// Package asm implements a two-pass assembler for the toy ISA in package
// isa. It exists so experiments and examples can express victim and
// attacker kernels (the amplification gadget, pointer-chase loops, covert
// channel probes) as readable assembly text instead of hand-built
// instruction literals.
//
// Syntax, one instruction or label per line:
//
//	# comment, or ; comment
//	loop:                       # label definition
//	    addi x1, x1, -1         # register-immediate
//	    add  x3, x1, x2         # register-register
//	    ld   x4, 16(x2)         # load: rd, offset(base)
//	    sd   x4, 8(x2)          # store: data, offset(base)
//	    bne  x1, x0, loop       # branch to label (or absolute index)
//	    jal  x0, loop           # unconditional jump
//	    halt
//
// Immediates may be decimal, hex (0x...), or character ('a'). Branch and
// JAL targets are labels or absolute instruction indices.
//
// Directives start with '.' and emit no instruction:
//
//	.secret 0x1000, 16          # declare 16 bytes at 0x1000 secret
//	.secret 0x2000, 8, key      # with an explicit label name
//
// Secret regions are carried on the Unit returned by AssembleUnit and feed
// the taint scanner (`pandora scan`); Assemble accepts and discards them.
//
// Pseudo-instructions expand to one base instruction each:
//
//	nop            -> addi x0, x0, 0
//	mv  rd, rs     -> addi rd, rs, 0
//	li  rd, imm    -> addi rd, x0, imm
//	j   target     -> jal  x0, target
//	ret            -> jalr x0, 0(x1)
//	not rd, rs     -> xori rd, rs, -1
//	neg rd, rs     -> sub  rd, x0, rs
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"pandora/internal/isa"
)

// Error describes an assembly failure with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

// SecretRegion is one memory range declared secret by a `.secret`
// directive, for the taint scanner.
type SecretRegion struct {
	Base uint64
	Len  uint64
	Name string
}

// Unit is the result of assembling one source text: the program plus any
// metadata directives it carried.
type Unit struct {
	Prog    isa.Program
	Secrets []SecretRegion
}

// Assemble translates source text into a program, discarding directives.
func Assemble(src string) (isa.Program, error) {
	u, err := AssembleUnit(src)
	return u.Prog, err
}

// AssembleUnit translates source text into a program and collects its
// directives.
func AssembleUnit(src string) (Unit, error) {
	a := &assembler{labels: make(map[string]int64)}
	if err := a.firstPass(src); err != nil {
		return Unit{}, err
	}
	if err := a.secondPass(src); err != nil {
		return Unit{}, err
	}
	return Unit{Prog: a.prog, Secrets: a.secrets}, nil
}

// MustAssemble is Assemble that panics on error, for tests and fixed
// experiment kernels whose source is a compile-time constant.
func MustAssemble(src string) isa.Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

type assembler struct {
	labels  map[string]int64
	prog    isa.Program
	secrets []SecretRegion
}

// directiveName returns the leading ".name" token when line is a
// directive, or "" otherwise. A label like ".foo:" is not a directive.
func directiveName(line string) string {
	if !strings.HasPrefix(line, ".") {
		return ""
	}
	name := line
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		name = line[:i]
	}
	if strings.Contains(name, ":") {
		return ""
	}
	return name
}

// stripComment removes '#' and ';' comments.
func stripComment(line string) string {
	if i := strings.IndexAny(line, "#;"); i >= 0 {
		line = line[:i]
	}
	return strings.TrimSpace(line)
}

func (a *assembler) firstPass(src string) error {
	idx := int64(0)
	for ln, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		if directiveName(line) != "" {
			continue // directives emit no instruction
		}
		for strings.Contains(line, ":") {
			i := strings.Index(line, ":")
			label := strings.TrimSpace(line[:i])
			if !isIdent(label) {
				return &Error{ln + 1, fmt.Sprintf("bad label %q", label)}
			}
			if _, dup := a.labels[label]; dup {
				return &Error{ln + 1, fmt.Sprintf("duplicate label %q", label)}
			}
			a.labels[label] = idx
			line = strings.TrimSpace(line[i+1:])
		}
		if line != "" {
			idx++
		}
	}
	return nil
}

func (a *assembler) secondPass(src string) error {
	for ln, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		if d := directiveName(line); d != "" {
			if err := a.parseDirective(d, line); err != nil {
				return &Error{ln + 1, err.Error()}
			}
			continue
		}
		for strings.Contains(line, ":") {
			line = strings.TrimSpace(line[strings.Index(line, ":")+1:])
		}
		if line == "" {
			continue
		}
		in, err := a.parseInst(line)
		if err != nil {
			return &Error{ln + 1, err.Error()}
		}
		a.prog = append(a.prog, in)
	}
	return nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

var mnemonics = map[string]isa.Op{
	"add": isa.ADD, "sub": isa.SUB, "and": isa.AND, "or": isa.OR, "xor": isa.XOR,
	"sll": isa.SLL, "srl": isa.SRL, "sra": isa.SRA, "slt": isa.SLT, "sltu": isa.SLTU,
	"mul": isa.MUL, "mulh": isa.MULH, "div": isa.DIV, "rem": isa.REM,
	"addi": isa.ADDI, "andi": isa.ANDI, "ori": isa.ORI, "xori": isa.XORI,
	"slli": isa.SLLI, "srli": isa.SRLI, "srai": isa.SRAI, "slti": isa.SLTI, "lui": isa.LUI,
	"lb": isa.LB, "lbu": isa.LBU, "lh": isa.LH, "lhu": isa.LHU,
	"lw": isa.LW, "lwu": isa.LWU, "ld": isa.LD,
	"sb": isa.SB, "sh": isa.SH, "sw": isa.SW, "sd": isa.SD,
	"beq": isa.BEQ, "bne": isa.BNE, "blt": isa.BLT, "bge": isa.BGE,
	"bltu": isa.BLTU, "bgeu": isa.BGEU,
	"jal": isa.JAL, "jalr": isa.JALR,
	"rdcycle": isa.RDCYCLE, "fence": isa.FENCE, "halt": isa.HALT,
}

// splitOperands splits "x1, 8(x2)" into {"x1", "8(x2)"}.
func splitOperands(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// parseDirective handles a directive line during the second pass. The
// first pass already skipped it, so directives never shift instruction
// indices or label targets.
func (a *assembler) parseDirective(name, line string) error {
	rest := strings.TrimSpace(line[len(name):])
	switch name {
	case ".secret":
		ops := splitOperands(rest)
		if len(ops) != 2 && len(ops) != 3 {
			return fmt.Errorf(".secret needs base, len[, name]")
		}
		base, err := a.parseImm(ops[0])
		if err != nil {
			return err
		}
		n, err := a.parseImm(ops[1])
		if err != nil {
			return err
		}
		if n <= 0 {
			return fmt.Errorf(".secret length must be positive, got %d", n)
		}
		sname := fmt.Sprintf("secret%d", len(a.secrets))
		if len(ops) == 3 {
			if !isIdent(ops[2]) {
				return fmt.Errorf(".secret name %q is not an identifier", ops[2])
			}
			sname = ops[2]
		}
		a.secrets = append(a.secrets, SecretRegion{Base: uint64(base), Len: uint64(n), Name: sname})
		return nil
	default:
		return fmt.Errorf("unknown directive %q", name)
	}
}

func (a *assembler) parseInst(line string) (isa.Inst, error) {
	var mn, rest string
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mn, rest = line[:i], strings.TrimSpace(line[i+1:])
	} else {
		mn = line
	}
	lower := strings.ToLower(mn)
	if in, ok, err := a.parsePseudo(lower, splitOperands(rest)); ok || err != nil {
		return in, err
	}
	op, ok := mnemonics[lower]
	if !ok {
		return isa.Inst{}, fmt.Errorf("unknown mnemonic %q", mn)
	}
	ops := splitOperands(rest)

	switch isa.ClassOf(op) {
	case isa.ClassALU, isa.ClassMul, isa.ClassDiv:
		if op == isa.LUI {
			if len(ops) != 2 {
				return isa.Inst{}, fmt.Errorf("lui needs rd, imm")
			}
			rd, err := parseReg(ops[0])
			if err != nil {
				return isa.Inst{}, err
			}
			imm, err := a.parseImm(ops[1])
			if err != nil {
				return isa.Inst{}, err
			}
			return isa.Inst{Op: op, Rd: rd, Imm: imm}, nil
		}
		if len(ops) != 3 {
			return isa.Inst{}, fmt.Errorf("%s needs 3 operands", mn)
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return isa.Inst{}, err
		}
		rs1, err := parseReg(ops[1])
		if err != nil {
			return isa.Inst{}, err
		}
		if isa.HasImm(op) {
			imm, err := a.parseImm(ops[2])
			if err != nil {
				return isa.Inst{}, err
			}
			return isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm}, nil
		}
		rs2, err := parseReg(ops[2])
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}, nil

	case isa.ClassLoad:
		if len(ops) != 2 {
			return isa.Inst{}, fmt.Errorf("%s needs rd, offset(base)", mn)
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return isa.Inst{}, err
		}
		imm, base, err := a.parseMemOperand(ops[1])
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: op, Rd: rd, Rs1: base, Imm: imm}, nil

	case isa.ClassStore:
		if len(ops) != 2 {
			return isa.Inst{}, fmt.Errorf("%s needs data, offset(base)", mn)
		}
		data, err := parseReg(ops[0])
		if err != nil {
			return isa.Inst{}, err
		}
		imm, base, err := a.parseMemOperand(ops[1])
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: op, Rs1: base, Rs2: data, Imm: imm}, nil

	case isa.ClassBranch:
		if len(ops) != 3 {
			return isa.Inst{}, fmt.Errorf("%s needs rs1, rs2, target", mn)
		}
		rs1, err := parseReg(ops[0])
		if err != nil {
			return isa.Inst{}, err
		}
		rs2, err := parseReg(ops[1])
		if err != nil {
			return isa.Inst{}, err
		}
		tgt, err := a.parseTarget(ops[2])
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: tgt}, nil

	case isa.ClassJump:
		if op == isa.JAL {
			if len(ops) != 2 {
				return isa.Inst{}, fmt.Errorf("jal needs rd, target")
			}
			rd, err := parseReg(ops[0])
			if err != nil {
				return isa.Inst{}, err
			}
			tgt, err := a.parseTarget(ops[1])
			if err != nil {
				return isa.Inst{}, err
			}
			return isa.Inst{Op: op, Rd: rd, Imm: tgt}, nil
		}
		if len(ops) != 2 {
			return isa.Inst{}, fmt.Errorf("jalr needs rd, offset(base)")
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return isa.Inst{}, err
		}
		imm, base, err := a.parseMemOperand(ops[1])
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: op, Rd: rd, Rs1: base, Imm: imm}, nil

	case isa.ClassCSR:
		if len(ops) != 1 {
			return isa.Inst{}, fmt.Errorf("rdcycle needs rd")
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: op, Rd: rd}, nil

	case isa.ClassFence, isa.ClassHalt:
		if len(ops) != 0 {
			return isa.Inst{}, fmt.Errorf("%s takes no operands", mn)
		}
		return isa.Inst{Op: op}, nil
	}
	return isa.Inst{}, fmt.Errorf("unhandled mnemonic %q", mn)
}

// parsePseudo expands pseudo-instructions; ok reports whether the
// mnemonic was one.
func (a *assembler) parsePseudo(mn string, ops []string) (isa.Inst, bool, error) {
	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s needs %d operand(s)", mn, n)
		}
		return nil
	}
	switch mn {
	case "nop":
		if err := need(0); err != nil {
			return isa.Inst{}, true, err
		}
		return isa.Inst{Op: isa.ADDI}, true, nil
	case "mv":
		if err := need(2); err != nil {
			return isa.Inst{}, true, err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return isa.Inst{}, true, err
		}
		rs, err := parseReg(ops[1])
		if err != nil {
			return isa.Inst{}, true, err
		}
		return isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: rs}, true, nil
	case "li":
		if err := need(2); err != nil {
			return isa.Inst{}, true, err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return isa.Inst{}, true, err
		}
		imm, err := a.parseImm(ops[1])
		if err != nil {
			return isa.Inst{}, true, err
		}
		return isa.Inst{Op: isa.ADDI, Rd: rd, Imm: imm}, true, nil
	case "j":
		if err := need(1); err != nil {
			return isa.Inst{}, true, err
		}
		tgt, err := a.parseTarget(ops[0])
		if err != nil {
			return isa.Inst{}, true, err
		}
		return isa.Inst{Op: isa.JAL, Rd: isa.X0, Imm: tgt}, true, nil
	case "ret":
		if err := need(0); err != nil {
			return isa.Inst{}, true, err
		}
		return isa.Inst{Op: isa.JALR, Rd: isa.X0, Rs1: 1}, true, nil
	case "not":
		if err := need(2); err != nil {
			return isa.Inst{}, true, err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return isa.Inst{}, true, err
		}
		rs, err := parseReg(ops[1])
		if err != nil {
			return isa.Inst{}, true, err
		}
		return isa.Inst{Op: isa.XORI, Rd: rd, Rs1: rs, Imm: -1}, true, nil
	case "neg":
		if err := need(2); err != nil {
			return isa.Inst{}, true, err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return isa.Inst{}, true, err
		}
		rs, err := parseReg(ops[1])
		if err != nil {
			return isa.Inst{}, true, err
		}
		return isa.Inst{Op: isa.SUB, Rd: rd, Rs2: rs}, true, nil
	}
	return isa.Inst{}, false, nil
}

func parseReg(s string) (isa.Reg, error) {
	s = strings.ToLower(s)
	if !strings.HasPrefix(s, "x") {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return isa.Reg(n), nil
}

func (a *assembler) parseImm(s string) (int64, error) {
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		r := []rune(s[1 : len(s)-1])
		if len(r) != 1 {
			return 0, fmt.Errorf("bad char literal %s", s)
		}
		return int64(r[0]), nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Allow unsigned hex up to 64 bits.
		u, uerr := strconv.ParseUint(s, 0, 64)
		if uerr != nil {
			return 0, fmt.Errorf("bad immediate %q", s)
		}
		return int64(u), nil
	}
	return v, nil
}

// parseTarget resolves a branch/jump target: a label or an absolute index.
func (a *assembler) parseTarget(s string) (int64, error) {
	if t, ok := a.labels[s]; ok {
		return t, nil
	}
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		return v, nil
	}
	return 0, fmt.Errorf("undefined label %q", s)
}

// parseMemOperand parses "offset(base)", "(base)" or "offset".
func (a *assembler) parseMemOperand(s string) (int64, isa.Reg, error) {
	open := strings.Index(s, "(")
	if open < 0 {
		imm, err := a.parseImm(s)
		return imm, isa.X0, err
	}
	if !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	var imm int64
	var err error
	if open > 0 {
		imm, err = a.parseImm(s[:open])
		if err != nil {
			return 0, 0, err
		}
	}
	base, err := parseReg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	return imm, base, nil
}
