package asm

import (
	"strings"
	"testing"

	"pandora/internal/isa"
)

func TestAssembleBasics(t *testing.T) {
	p, err := Assemble(`
		# a comment
		addi x1, x0, 42     ; trailing comment
		add  x2, x1, x1
		ld   x3, 16(x2)
		sd   x3, -8(x1)
		lui  x4, 0x12
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	want := isa.Program{
		{Op: isa.ADDI, Rd: 1, Rs1: 0, Imm: 42},
		{Op: isa.ADD, Rd: 2, Rs1: 1, Rs2: 1},
		{Op: isa.LD, Rd: 3, Rs1: 2, Imm: 16},
		{Op: isa.SD, Rs1: 1, Rs2: 3, Imm: -8},
		{Op: isa.LUI, Rd: 4, Imm: 0x12},
		{Op: isa.HALT},
	}
	if len(p) != len(want) {
		t.Fatalf("got %d instructions, want %d", len(p), len(want))
	}
	for i := range want {
		if p[i] != want[i] {
			t.Errorf("inst %d = %+v, want %+v", i, p[i], want[i])
		}
	}
}

func TestLabels(t *testing.T) {
	p, err := Assemble(`
	start:
		addi x1, x0, 3
	loop:
		addi x1, x1, -1
		bne  x1, x0, loop
		jal  x0, done
		addi x2, x0, 9
	done:
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p[2].Imm != 1 {
		t.Errorf("bne target = %d, want 1", p[2].Imm)
	}
	if p[3].Imm != 5 {
		t.Errorf("jal target = %d, want 5", p[3].Imm)
	}
}

func TestLabelOnSameLine(t *testing.T) {
	p, err := Assemble("top: addi x1, x1, 1\nbne x1, x2, top\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 3 || p[1].Imm != 0 {
		t.Fatalf("unexpected program: %v", p)
	}
}

func TestImmediateForms(t *testing.T) {
	p, err := Assemble(`
		addi x1, x0, 0x10
		addi x2, x0, -5
		addi x3, x0, 'A'
		addi x4, x0, 0xffffffffffffffff
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p[0].Imm != 16 || p[1].Imm != -5 || p[2].Imm != 65 || p[3].Imm != -1 {
		t.Errorf("immediates = %d %d %d %d", p[0].Imm, p[1].Imm, p[2].Imm, p[3].Imm)
	}
}

func TestMemOperandForms(t *testing.T) {
	p, err := Assemble(`
		ld x1, (x2)
		ld x1, 0x20(x3)
		jalr x0, (x1)
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p[0].Imm != 0 || p[0].Rs1 != 2 {
		t.Errorf("bare base: %+v", p[0])
	}
	if p[1].Imm != 32 || p[1].Rs1 != 3 {
		t.Errorf("hex offset: %+v", p[1])
	}
	if p[2].Op != isa.JALR || p[2].Rs1 != 1 {
		t.Errorf("jalr: %+v", p[2])
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown mnemonic", "frob x1, x2, x3", "unknown mnemonic"},
		{"bad register", "add x1, x2, x99", "bad register"},
		{"bad register name", "add x1, x2, y3", "bad register"},
		{"missing operand", "add x1, x2", "3 operands"},
		{"undefined label", "jal x0, nowhere", "undefined label"},
		{"duplicate label", "a:\na:\nhalt", "duplicate label"},
		{"bad immediate", "addi x1, x0, zebra", "bad immediate"},
		{"halt with operands", "halt x1", "no operands"},
		{"bad memory operand", "ld x1, 8(x2", "bad memory operand"},
		{"store needs two", "sd x1", "offset(base)"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.src)
			if err == nil {
				t.Fatalf("expected error for %q", c.src)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestErrorHasLineNumber(t *testing.T) {
	_, err := Assemble("addi x1, x0, 1\nfrob\nhalt")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %q should mention line 2", err)
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic on bad source")
		}
	}()
	MustAssemble("bogus")
}

// TestRoundTripDisassembly checks Inst.String output re-assembles to the
// same instruction for non-control ops.
func TestRoundTripDisassembly(t *testing.T) {
	p := MustAssemble(`
		add x1, x2, x3
		addi x4, x5, -17
		mul x6, x7, x8
		ld x9, 24(x10)
		sd x11, 32(x12)
		rdcycle x13
		fence
		halt
	`)
	for _, in := range p {
		re, err := Assemble(in.String())
		if err != nil {
			t.Errorf("re-assemble %q: %v", in.String(), err)
			continue
		}
		if len(re) != 1 || re[0] != in {
			t.Errorf("round trip %q: got %+v, want %+v", in.String(), re[0], in)
		}
	}
}

func TestPseudoInstructions(t *testing.T) {
	p, err := Assemble(`
		nop
		li  x1, 42
		mv  x2, x1
		not x3, x1
		neg x4, x1
		j   end
		ret
	end:
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	want := isa.Program{
		{Op: isa.ADDI},
		{Op: isa.ADDI, Rd: 1, Imm: 42},
		{Op: isa.ADDI, Rd: 2, Rs1: 1},
		{Op: isa.XORI, Rd: 3, Rs1: 1, Imm: -1},
		{Op: isa.SUB, Rd: 4, Rs2: 1},
		{Op: isa.JAL, Rd: 0, Imm: 7},
		{Op: isa.JALR, Rd: 0, Rs1: 1},
		{Op: isa.HALT},
	}
	for i := range want {
		if p[i] != want[i] {
			t.Errorf("pseudo %d = %+v, want %+v", i, p[i], want[i])
		}
	}
}

func TestPseudoErrors(t *testing.T) {
	for _, src := range []string{"nop x1", "li x1", "mv x1", "j", "ret x1", "not x1", "neg x1", "li x1, frog"} {
		if _, err := Assemble(src); err == nil {
			t.Errorf("pseudo %q accepted", src)
		}
	}
}

func TestPseudoCaseInsensitive(t *testing.T) {
	p, err := Assemble("LI x1, 3\nNOP\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if p[0].Op != isa.ADDI || p[0].Imm != 3 {
		t.Errorf("LI expansion: %+v", p[0])
	}
}

func TestSecretDirective(t *testing.T) {
	u, err := AssembleUnit(`
		.secret 0x1000, 16
		.secret 0x2000, 8, key
		addi x1, x0, 0x1000
	loop:
		ld   x2, 0(x1)
		bne  x2, x0, loop
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	want := []SecretRegion{
		{Base: 0x1000, Len: 16, Name: "secret0"},
		{Base: 0x2000, Len: 8, Name: "key"},
	}
	if len(u.Secrets) != len(want) {
		t.Fatalf("got %d secrets, want %d", len(u.Secrets), len(want))
	}
	for i := range want {
		if u.Secrets[i] != want[i] {
			t.Errorf("secret %d = %+v, want %+v", i, u.Secrets[i], want[i])
		}
	}
	// Directives emit no instructions and must not shift label targets:
	// the bne's target is the ld at index 1.
	if len(u.Prog) != 4 {
		t.Fatalf("got %d instructions, want 4", len(u.Prog))
	}
	if u.Prog[2].Op != isa.BNE || u.Prog[2].Imm != 1 {
		t.Errorf("branch = %+v, want target 1", u.Prog[2])
	}
}

func TestSecretDirectiveErrors(t *testing.T) {
	for _, src := range []string{
		".secret",                    // missing operands
		".secret 0x1000",             // missing length
		".secret 0x1000, 0",          // zero length
		".secret 0x1000, -4",         // negative length
		".secret 0x1000, 8, 9bad",    // malformed name
		".secret 0x1000, 8, a, b",    // too many operands
		".quux 1, 2",                 // unknown directive
	} {
		if _, err := AssembleUnit(src + "\nhalt"); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestAssembleDiscardsDirectives(t *testing.T) {
	p, err := Assemble(".secret 0x1000, 8\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 1 || p[0].Op != isa.HALT {
		t.Fatalf("prog = %+v", p)
	}
}
