package emu

import (
	"testing"

	"pandora/internal/asm"
	"pandora/internal/isa"
	"pandora/internal/mem"
)

func runSrc(t *testing.T, src string) *Machine {
	t.Helper()
	m := New(nil)
	if err := m.Run(asm.MustAssemble(src), 1_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m
}

func TestFibonacci(t *testing.T) {
	m := runSrc(t, `
		addi x1, x0, 0     # a
		addi x2, x0, 1     # b
		addi x3, x0, 20    # n
	loop:
		add  x4, x1, x2
		add  x1, x2, x0
		add  x2, x4, x0
		addi x3, x3, -1
		bne  x3, x0, loop
		halt
	`)
	if got := m.Regs[2]; got != 10946 {
		t.Errorf("fib(21) = %d, want 10946", got)
	}
}

func TestMemoryOps(t *testing.T) {
	m := runSrc(t, `
		addi x1, x0, 0x1000
		addi x2, x0, -1
		sd   x2, 0(x1)
		lw   x3, 0(x1)      # sign-extended
		lwu  x4, 0(x1)      # zero-extended
		sb   x0, 3(x1)
		ld   x5, 0(x1)
		halt
	`)
	if int64(m.Regs[3]) != -1 {
		t.Errorf("lw = %d", int64(m.Regs[3]))
	}
	if m.Regs[4] != 0xffffffff {
		t.Errorf("lwu = %#x", m.Regs[4])
	}
	if m.Regs[5] != 0xffffffff00ffffff {
		t.Errorf("ld after sb = %#x", m.Regs[5])
	}
}

func TestX0IsZero(t *testing.T) {
	m := runSrc(t, `
		addi x0, x0, 99
		add  x1, x0, x0
		halt
	`)
	if m.Regs[0] != 0 || m.Regs[1] != 0 {
		t.Errorf("x0 = %d, x1 = %d; both must be 0", m.Regs[0], m.Regs[1])
	}
}

func TestJalrSubroutine(t *testing.T) {
	m := runSrc(t, `
		addi x10, x0, 5
		jal  x1, double    # call
		addi x11, x10, 0   # x11 = result
		halt
	double:
		add  x10, x10, x10
		jalr x0, (x1)      # return
	`)
	if got := m.Regs[11]; got != 10 {
		t.Errorf("double(5) = %d", got)
	}
}

func TestRDCYCLEReadsRetired(t *testing.T) {
	m := runSrc(t, `
		addi x1, x0, 1
		rdcycle x2
		halt
	`)
	if m.Regs[2] != 1 {
		t.Errorf("rdcycle in emulator = %d, want retired count 1", m.Regs[2])
	}
}

func TestStepBudget(t *testing.T) {
	m := New(nil)
	err := m.Run(asm.MustAssemble("loop: jal x0, loop\nhalt"), 100)
	if err != ErrNoHalt {
		t.Errorf("err = %v, want ErrNoHalt", err)
	}
}

func TestPCOutOfRange(t *testing.T) {
	m := New(nil)
	// Branch beyond the program end.
	prog := isa.Program{
		{Op: isa.JAL, Rd: 0, Imm: 99},
		{Op: isa.HALT},
	}
	if err := m.Run(prog, 100); err == nil {
		t.Error("expected pc-out-of-range error")
	}
}

func TestResetPreservesMemory(t *testing.T) {
	m := New(mem.New())
	m.Mem.Write(0x10, 8, 42)
	m.Regs[5] = 7
	m.PC = 3
	m.Reset()
	if m.Regs[5] != 0 || m.PC != 0 {
		t.Error("Reset did not clear register state")
	}
	if m.Mem.Read(0x10, 8) != 42 {
		t.Error("Reset cleared memory")
	}
}

func TestTraceHook(t *testing.T) {
	m := New(nil)
	var pcs []int64
	m.Trace = func(pc int64, in isa.Inst) { pcs = append(pcs, pc) }
	if err := m.Run(asm.MustAssemble("addi x1, x0, 1\naddi x2, x0, 2\nhalt"), 100); err != nil {
		t.Fatal(err)
	}
	if len(pcs) != 3 || pcs[0] != 0 || pcs[2] != 2 {
		t.Errorf("trace = %v", pcs)
	}
}
