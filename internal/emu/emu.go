// Package emu is the functional (golden-model) interpreter for the toy
// ISA. It executes one instruction at a time with no timing model and is
// used (a) to cross-check the out-of-order pipeline's architectural
// results in differential tests and (b) to run value-producing code whose
// timing is irrelevant.
package emu

import (
	"errors"
	"fmt"

	"pandora/internal/isa"
	"pandora/internal/mem"
)

// ErrNoHalt is returned when execution exceeds the step budget without
// reaching HALT.
var ErrNoHalt = errors.New("emu: step budget exhausted before halt")

// Machine is a functional CPU: 32 registers, a program counter, and a
// reference to data memory.
type Machine struct {
	Regs [isa.NumRegs]uint64
	PC   int64
	Mem  *mem.Memory

	// Retired counts executed instructions; RDCYCLE reads it (the
	// functional model has no cycles).
	Retired uint64

	// Trace, when non-nil, receives every executed instruction.
	Trace func(pc int64, in isa.Inst)

	// Shadow, when non-nil, observes every instruction immediately before
	// it executes, with the pre-execution register file. It is the hook
	// the taint engine (internal/taint) attaches to so shadow labels can
	// be propagated in lockstep with architectural state without this
	// package depending on the taint representation.
	Shadow func(pc int64, in isa.Inst, regs *[isa.NumRegs]uint64)
}

// New returns a machine bound to m (a fresh memory if m is nil).
func New(m *mem.Memory) *Machine {
	if m == nil {
		m = mem.New()
	}
	return &Machine{Mem: m}
}

// Reset clears registers, PC and the retired counter; memory is preserved.
func (mc *Machine) Reset() {
	mc.Regs = [isa.NumRegs]uint64{}
	mc.PC = 0
	mc.Retired = 0
}

// Step executes the instruction at PC. It returns (true, nil) when the
// instruction was HALT.
func (mc *Machine) Step(prog isa.Program) (halted bool, err error) {
	if mc.PC < 0 || mc.PC >= int64(len(prog)) {
		return false, fmt.Errorf("emu: pc %d out of program [0,%d)", mc.PC, len(prog))
	}
	in := prog[mc.PC]
	if mc.Trace != nil {
		mc.Trace(mc.PC, in)
	}
	if mc.Shadow != nil {
		mc.Shadow(mc.PC, in, &mc.Regs)
	}
	next := mc.PC + 1

	switch isa.ClassOf(in.Op) {
	case isa.ClassALU, isa.ClassMul, isa.ClassDiv:
		a, b := in.Operands(mc.Regs[in.Rs1], mc.Regs[in.Rs2])
		mc.write(in.Rd, isa.EvalALU(in.Op, a, b))

	case isa.ClassLoad:
		addr := in.EffectiveAddr(mc.Regs[in.Rs1])
		v := mc.Mem.Read(addr, isa.MemWidth(in.Op))
		mc.write(in.Rd, isa.LoadExtend(in.Op, v))

	case isa.ClassStore:
		addr := in.EffectiveAddr(mc.Regs[in.Rs1])
		mc.Mem.Write(addr, isa.MemWidth(in.Op), mc.Regs[in.Rs2])

	case isa.ClassBranch:
		if isa.Taken(in.Op, mc.Regs[in.Rs1], mc.Regs[in.Rs2]) {
			next = in.Imm
		}

	case isa.ClassJump:
		link := uint64(mc.PC + 1)
		if in.Op == isa.JAL {
			next = in.Imm
		} else {
			next = int64(in.EffectiveAddr(mc.Regs[in.Rs1]))
		}
		mc.write(in.Rd, link)

	case isa.ClassCSR:
		mc.write(in.Rd, mc.Retired)

	case isa.ClassFence:
		// No-op functionally.

	case isa.ClassHalt:
		mc.Retired++
		return true, nil

	default:
		return false, fmt.Errorf("emu: cannot execute %v", in)
	}

	mc.Retired++
	mc.PC = next
	return false, nil
}

func (mc *Machine) write(r isa.Reg, v uint64) {
	if r != isa.X0 {
		mc.Regs[r] = v
	}
}

// Run executes prog from the current PC until HALT or until maxSteps
// instructions have retired, returning ErrNoHalt in the latter case.
func (mc *Machine) Run(prog isa.Program, maxSteps int) error {
	for i := 0; i < maxSteps; i++ {
		halted, err := mc.Step(prog)
		if err != nil {
			return err
		}
		if halted {
			return nil
		}
	}
	return ErrNoHalt
}
