package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func u(x int64) uint64 { return uint64(x) }

func TestClassOf(t *testing.T) {
	cases := []struct {
		op   Op
		want Class
	}{
		{ADD, ClassALU}, {XORI, ClassALU}, {LUI, ClassALU},
		{MUL, ClassMul}, {MULH, ClassMul},
		{DIV, ClassDiv}, {REM, ClassDiv},
		{LB, ClassLoad}, {LD, ClassLoad}, {LWU, ClassLoad},
		{SB, ClassStore}, {SD, ClassStore},
		{BEQ, ClassBranch}, {BGEU, ClassBranch},
		{JAL, ClassJump}, {JALR, ClassJump},
		{RDCYCLE, ClassCSR}, {FENCE, ClassFence}, {HALT, ClassHalt},
	}
	for _, c := range cases {
		if got := ClassOf(c.op); got != c.want {
			t.Errorf("ClassOf(%v) = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestMemWidth(t *testing.T) {
	cases := map[Op]int{
		LB: 1, LBU: 1, SB: 1,
		LH: 2, LHU: 2, SH: 2,
		LW: 4, LWU: 4, SW: 4,
		LD: 8, SD: 8,
		ADD: 0, BEQ: 0, HALT: 0,
	}
	for op, want := range cases {
		if got := MemWidth(op); got != want {
			t.Errorf("MemWidth(%v) = %d, want %d", op, got, want)
		}
	}
}

func TestEvalALUBasics(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint64
		want uint64
	}{
		{ADD, 3, 4, 7},
		{SUB, 3, 4, ^uint64(0)},
		{AND, 0b1100, 0b1010, 0b1000},
		{OR, 0b1100, 0b1010, 0b1110},
		{XOR, 0b1100, 0b1010, 0b0110},
		{SLL, 1, 63, 1 << 63},
		{SLL, 1, 64, 1}, // shift amount masked to 6 bits
		{SRL, 1 << 63, 63, 1},
		{SRA, u(int64(-8)), 2, u(int64(-2))},
		{SLT, u(int64(-1)), 0, 1},
		{SLT, 0, u(int64(-1)), 0},
		{SLTU, u(int64(-1)), 0, 0}, // -1 unsigned is max
		{MUL, 7, 6, 42},
		{DIV, 42, 7, 6},
		{DIV, u(int64(-42)), 7, u(int64(-6))},
		{REM, 43, 7, 1},
		{DIV, 5, 0, ^uint64(0)},
		{REM, 5, 0, 5},
		{DIV, 1 << 63, ^uint64(0), 1 << 63}, // INT_MIN / -1 overflow
		{REM, 1 << 63, ^uint64(0), 0},
		{LUI, 0, 5, 5 << 12},
	}
	for _, c := range cases {
		if got := EvalALU(c.op, c.a, c.b); got != c.want {
			t.Errorf("EvalALU(%v, %#x, %#x) = %#x, want %#x", c.op, c.a, c.b, got, c.want)
		}
	}
}

// TestMULHMatchesBigMul property-checks the high-multiply against 128-bit
// reference arithmetic built from 32-bit limbs.
func TestMULHMatchesBigMul(t *testing.T) {
	ref := func(a, b int64) uint64 {
		// Compute via math/big-free approach: split into signed halves is
		// fiddly, so verify through the identity
		// (a*b)_128 = hi*2^64 + lo, checking hi by long multiplication on
		// magnitudes with sign fixup — same as the implementation but
		// derived independently using per-byte multiplication.
		neg := (a < 0) != (b < 0)
		ua, ub := uint64(a), uint64(b)
		if a < 0 {
			ua = uint64(-a)
		}
		if b < 0 {
			ub = uint64(-b)
		}
		var prod [16]uint32 // base-2^16 digits
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				d := uint64(uint16(ua>>(16*i))) * uint64(uint16(ub>>(16*j)))
				k := i + j
				for d > 0 && k < 16 {
					d += uint64(prod[k])
					prod[k] = uint32(uint16(d))
					d >>= 16
					k++
				}
			}
		}
		var hi, lo uint64
		for k := 7; k >= 4; k-- {
			hi = hi<<16 | uint64(uint16(prod[k]))
		}
		for k := 3; k >= 0; k-- {
			lo = lo<<16 | uint64(uint16(prod[k]))
		}
		if neg {
			lo = ^lo + 1
			hi = ^hi
			if lo == 0 {
				hi++
			}
		}
		return hi
	}
	f := func(a, b int64) bool {
		return EvalALU(MULH, uint64(a), uint64(b)) == ref(a, b)
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	// Edge cases.
	edges := []int64{0, 1, -1, 1 << 62, -1 << 63, (1 << 63) - 1}
	for _, a := range edges {
		for _, b := range edges {
			if got, want := EvalALU(MULH, uint64(a), uint64(b)), ref(a, b); got != want {
				t.Errorf("MULH(%d,%d) = %#x, want %#x", a, b, got, want)
			}
		}
	}
}

func TestTaken(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint64
		want bool
	}{
		{BEQ, 5, 5, true}, {BEQ, 5, 6, false},
		{BNE, 5, 6, true}, {BNE, 5, 5, false},
		{BLT, u(int64(-1)), 0, true}, {BLT, 0, u(int64(-1)), false},
		{BGE, 0, 0, true}, {BGE, u(int64(-1)), 0, false},
		{BLTU, 0, u(int64(-1)), true}, {BLTU, u(int64(-1)), 0, false},
		{BGEU, u(int64(-1)), 0, true},
	}
	for _, c := range cases {
		if got := Taken(c.op, c.a, c.b); got != c.want {
			t.Errorf("Taken(%v, %d, %d) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestUsesWrites(t *testing.T) {
	cases := []struct {
		in         Inst
		r1, r2, rd Reg
	}{
		{Inst{Op: ADD, Rd: 3, Rs1: 1, Rs2: 2}, 1, 2, 3},
		{Inst{Op: ADDI, Rd: 3, Rs1: 1, Imm: 4}, 1, X0, 3},
		{Inst{Op: LUI, Rd: 3, Imm: 4}, X0, X0, 3},
		{Inst{Op: LD, Rd: 3, Rs1: 1, Imm: 8}, 1, X0, 3},
		{Inst{Op: SD, Rs1: 1, Rs2: 2, Imm: 8}, 1, 2, X0},
		{Inst{Op: BEQ, Rs1: 1, Rs2: 2, Imm: 0}, 1, 2, X0},
		{Inst{Op: JAL, Rd: 1, Imm: 0}, X0, X0, 1},
		{Inst{Op: JALR, Rd: 1, Rs1: 2, Imm: 0}, 2, X0, 1},
		{Inst{Op: RDCYCLE, Rd: 5}, X0, X0, 5},
		{Inst{Op: HALT}, X0, X0, X0},
		{Inst{Op: FENCE}, X0, X0, X0},
	}
	for _, c := range cases {
		g1, g2 := c.in.Uses()
		if g1 != c.r1 || g2 != c.r2 {
			t.Errorf("%v Uses() = %v,%v want %v,%v", c.in, g1, g2, c.r1, c.r2)
		}
		if got := c.in.Writes(); got != c.rd {
			t.Errorf("%v Writes() = %v, want %v", c.in, got, c.rd)
		}
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: ADD, Rd: 3, Rs1: 1, Rs2: 2}, "add x3, x1, x2"},
		{Inst{Op: ADDI, Rd: 3, Rs1: 1, Imm: -4}, "addi x3, x1, -4"},
		{Inst{Op: LD, Rd: 3, Rs1: 1, Imm: 8}, "ld x3, 8(x1)"},
		{Inst{Op: SD, Rs1: 1, Rs2: 2, Imm: 8}, "sd x2, 8(x1)"},
		{Inst{Op: BEQ, Rs1: 1, Rs2: 2, Imm: 7}, "beq x1, x2, 7"},
		{Inst{Op: JAL, Rd: 0, Imm: 3}, "jal x0, 3"},
		{Inst{Op: HALT}, "halt"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
