// Package isa defines the toy 64-bit RISC instruction set executed by the
// functional emulator (package emu) and the cycle-level out-of-order core
// (package pipeline). The ISA is deliberately small — integer ALU ops,
// multiply/divide, loads and stores of 1/2/4/8 bytes, conditional branches,
// jumps, a cycle counter read, and HALT — but rich enough to express every
// proof-of-concept in the paper: the silent-store amplification gadget, the
// bitslice-AES store sequence, and the JIT output of the mini-eBPF sandbox.
package isa

import "fmt"

// Reg identifies one of the 32 general-purpose registers. Register 0 (X0)
// is hardwired to zero, as in RISC-V.
type Reg uint8

// NumRegs is the number of architectural general-purpose registers.
const NumRegs = 32

// X0 is the hardwired-zero register.
const X0 Reg = 0

func (r Reg) String() string { return fmt.Sprintf("x%d", uint8(r)) }

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// Op enumerates the instruction opcodes.
type Op uint8

const (
	// Invalid is the zero Op; executing it is an error.
	Invalid Op = iota

	// Register-register ALU operations: rd = rs1 <op> rs2.
	ADD
	SUB
	AND
	OR
	XOR
	SLL // shift left logical (by rs2 & 63)
	SRL // shift right logical
	SRA // shift right arithmetic
	SLT // set if signed less-than
	SLTU
	MUL  // low 64 bits of product
	MULH // high 64 bits of signed product
	DIV  // signed division (div-by-zero yields all ones, as RISC-V)
	REM  // signed remainder (rem-by-zero yields dividend)

	// Register-immediate ALU operations: rd = rs1 <op> imm.
	ADDI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	SLTI
	LUI // rd = imm << 12 (upper immediate; imm is the raw 20-bit value)

	// Loads: rd = mem[rs1+imm], zero- or sign-extended per width.
	LB
	LBU
	LH
	LHU
	LW
	LWU
	LD

	// Stores: mem[rs1+imm] = rs2 (low width bytes).
	SB
	SH
	SW
	SD

	// Control flow. Branch targets and jump targets are absolute
	// instruction indices (not byte offsets): the assembler resolves
	// labels to indices, which keeps the simulator simple.
	BEQ // if rs1 == rs2 goto imm
	BNE
	BLT // signed
	BGE // signed
	BLTU
	BGEU
	JAL  // rd = pc+1; goto imm
	JALR // rd = pc+1; goto (rs1+imm)

	// RDCYCLE reads the current cycle counter into rd. In the functional
	// emulator it reads the retired-instruction count instead (there is no
	// cycle notion); programs measuring time must run on the pipeline.
	RDCYCLE

	// FENCE drains the store queue before younger memory operations issue.
	FENCE

	// HALT stops the machine.
	HALT

	numOps // sentinel
)

var opNames = [...]string{
	Invalid: "invalid",
	ADD:     "add", SUB: "sub", AND: "and", OR: "or", XOR: "xor",
	SLL: "sll", SRL: "srl", SRA: "sra", SLT: "slt", SLTU: "sltu",
	MUL: "mul", MULH: "mulh", DIV: "div", REM: "rem",
	ADDI: "addi", ANDI: "andi", ORI: "ori", XORI: "xori",
	SLLI: "slli", SRLI: "srli", SRAI: "srai", SLTI: "slti", LUI: "lui",
	LB: "lb", LBU: "lbu", LH: "lh", LHU: "lhu", LW: "lw", LWU: "lwu", LD: "ld",
	SB: "sb", SH: "sh", SW: "sw", SD: "sd",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", BLTU: "bltu", BGEU: "bgeu",
	JAL: "jal", JALR: "jalr",
	RDCYCLE: "rdcycle", FENCE: "fence", HALT: "halt",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Class groups opcodes by their pipeline handling.
type Class uint8

const (
	ClassALU Class = iota
	ClassMul
	ClassDiv
	ClassLoad
	ClassStore
	ClassBranch
	ClassJump
	ClassCSR // RDCYCLE
	ClassFence
	ClassHalt
)

func (c Class) String() string {
	switch c {
	case ClassALU:
		return "alu"
	case ClassMul:
		return "mul"
	case ClassDiv:
		return "div"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	case ClassJump:
		return "jump"
	case ClassCSR:
		return "csr"
	case ClassFence:
		return "fence"
	case ClassHalt:
		return "halt"
	}
	return "class?"
}

// ClassOf returns the pipeline class for op.
func ClassOf(op Op) Class {
	switch op {
	case MUL, MULH:
		return ClassMul
	case DIV, REM:
		return ClassDiv
	case LB, LBU, LH, LHU, LW, LWU, LD:
		return ClassLoad
	case SB, SH, SW, SD:
		return ClassStore
	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		return ClassBranch
	case JAL, JALR:
		return ClassJump
	case RDCYCLE:
		return ClassCSR
	case FENCE:
		return ClassFence
	case HALT:
		return ClassHalt
	default:
		return ClassALU
	}
}

// MemWidth returns the access width in bytes for load/store opcodes and 0
// for everything else.
func MemWidth(op Op) int {
	switch op {
	case LB, LBU, SB:
		return 1
	case LH, LHU, SH:
		return 2
	case LW, LWU, SW:
		return 4
	case LD, SD:
		return 8
	}
	return 0
}

// IsLoad reports whether op reads data memory.
func IsLoad(op Op) bool { return ClassOf(op) == ClassLoad }

// IsStore reports whether op writes data memory.
func IsStore(op Op) bool { return ClassOf(op) == ClassStore }

// Inst is one decoded instruction. Fields are used per opcode: ALU ops use
// Rd/Rs1/Rs2 (or Imm for the immediate forms); loads use Rd/Rs1/Imm; stores
// use Rs1 (base) / Rs2 (data) / Imm; branches use Rs1/Rs2/Imm (target
// index); JAL uses Rd/Imm; JALR uses Rd/Rs1/Imm.
type Inst struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int64
}

// HasImm reports whether the opcode consumes the Imm field.
func HasImm(op Op) bool {
	switch op {
	case ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI, LUI,
		LB, LBU, LH, LHU, LW, LWU, LD, SB, SH, SW, SD,
		BEQ, BNE, BLT, BGE, BLTU, BGEU, JAL, JALR:
		return true
	}
	return false
}

// Uses returns the source registers read by the instruction. The second
// register is X0 when unused (reading X0 is always free).
func (in Inst) Uses() (Reg, Reg) {
	switch ClassOf(in.Op) {
	case ClassStore, ClassBranch:
		return in.Rs1, in.Rs2
	case ClassLoad:
		return in.Rs1, X0
	case ClassJump:
		if in.Op == JALR {
			return in.Rs1, X0
		}
		return X0, X0
	case ClassCSR, ClassFence, ClassHalt:
		return X0, X0
	default:
		if HasImm(in.Op) {
			if in.Op == LUI {
				return X0, X0
			}
			return in.Rs1, X0
		}
		return in.Rs1, in.Rs2
	}
}

// Writes returns the destination register, or X0 if the instruction does
// not write one (stores, branches, fence, halt).
func (in Inst) Writes() Reg {
	switch ClassOf(in.Op) {
	case ClassStore, ClassBranch, ClassFence, ClassHalt:
		return X0
	default:
		return in.Rd
	}
}

func (in Inst) String() string {
	op := in.Op
	switch ClassOf(op) {
	case ClassLoad:
		return fmt.Sprintf("%s %s, %d(%s)", op, in.Rd, in.Imm, in.Rs1)
	case ClassStore:
		return fmt.Sprintf("%s %s, %d(%s)", op, in.Rs2, in.Imm, in.Rs1)
	case ClassBranch:
		return fmt.Sprintf("%s %s, %s, %d", op, in.Rs1, in.Rs2, in.Imm)
	case ClassJump:
		if op == JALR {
			return fmt.Sprintf("jalr %s, %d(%s)", in.Rd, in.Imm, in.Rs1)
		}
		return fmt.Sprintf("jal %s, %d", in.Rd, in.Imm)
	case ClassCSR:
		return fmt.Sprintf("rdcycle %s", in.Rd)
	case ClassFence:
		return "fence"
	case ClassHalt:
		return "halt"
	default:
		if op == LUI {
			return fmt.Sprintf("lui %s, %d", in.Rd, in.Imm)
		}
		if HasImm(op) {
			return fmt.Sprintf("%s %s, %s, %d", op, in.Rd, in.Rs1, in.Imm)
		}
		return fmt.Sprintf("%s %s, %s, %s", op, in.Rd, in.Rs1, in.Rs2)
	}
}

// Program is a sequence of instructions addressed by index.
type Program []Inst

// Operands returns the two execute-stage operand values for an ALU-family
// instruction, performing the immediate substitution: register-immediate
// forms replace the second register value with Imm. Both the emulator and
// the pipeline issue stage go through this helper so operand selection
// cannot drift between the two models (the taint engine mirrors the same
// rule).
func (in Inst) Operands(rs1v, rs2v uint64) (a, b uint64) {
	if HasImm(in.Op) {
		return rs1v, uint64(in.Imm)
	}
	return rs1v, rs2v
}

// EffectiveAddr computes the memory address of a load, store, or JALR
// target from the base register value: base + Imm.
func (in Inst) EffectiveAddr(base uint64) uint64 {
	return base + uint64(in.Imm)
}

// LoadExtend applies op's extension rule to the raw little-endian value
// read from memory: LB/LH/LW sign-extend from the access width, the
// unsigned forms and LD return the value unchanged.
func LoadExtend(op Op, v uint64) uint64 {
	switch op {
	case LB, LH, LW:
		shift := 64 - 8*uint(MemWidth(op))
		return uint64(int64(v<<shift) >> shift)
	}
	return v
}

// EvalALU computes the architectural result of a non-memory, non-control
// instruction given its (already immediate-substituted) operand values.
// It is shared by the emulator and the pipeline so the two cannot diverge.
func EvalALU(op Op, a, b uint64) uint64 {
	switch op {
	case ADD, ADDI:
		return a + b
	case SUB:
		return a - b
	case AND, ANDI:
		return a & b
	case OR, ORI:
		return a | b
	case XOR, XORI:
		return a ^ b
	case SLL, SLLI:
		return a << (b & 63)
	case SRL, SRLI:
		return a >> (b & 63)
	case SRA, SRAI:
		return uint64(int64(a) >> (b & 63))
	case SLT, SLTI:
		if int64(a) < int64(b) {
			return 1
		}
		return 0
	case SLTU:
		if a < b {
			return 1
		}
		return 0
	case LUI:
		return b << 12
	case MUL:
		return a * b
	case MULH:
		return mulh(int64(a), int64(b))
	case DIV:
		if b == 0 {
			return ^uint64(0)
		}
		if int64(a) == -1<<63 && int64(b) == -1 {
			return a // overflow: result is dividend, as RISC-V
		}
		return uint64(int64(a) / int64(b))
	case REM:
		if b == 0 {
			return a
		}
		if int64(a) == -1<<63 && int64(b) == -1 {
			return 0
		}
		return uint64(int64(a) % int64(b))
	}
	panic(fmt.Sprintf("isa: EvalALU on %v", op))
}

// mulh returns the high 64 bits of the 128-bit signed product a*b.
func mulh(a, b int64) uint64 {
	// Decompose into 32-bit halves and recombine, carrying into the high
	// word. Signed variant of the standard schoolbook high-multiply.
	neg := (a < 0) != (b < 0)
	ua, ub := uint64(a), uint64(b)
	if a < 0 {
		ua = uint64(-a)
	}
	if b < 0 {
		ub = uint64(-b)
	}
	hi, lo := umul128(ua, ub)
	if neg {
		// two's complement of the 128-bit value
		lo = ^lo + 1
		hi = ^hi
		if lo == 0 {
			hi++
		}
	}
	_ = lo
	return hi
}

func umul128(a, b uint64) (hi, lo uint64) {
	a0, a1 := a&0xffffffff, a>>32
	b0, b1 := b&0xffffffff, b>>32
	t := a0 * b0
	lo = t & 0xffffffff
	c := t >> 32
	t = a1*b0 + c
	c = t >> 32
	m := t & 0xffffffff
	t = a0*b1 + m
	lo |= (t & 0xffffffff) << 32
	hi = a1*b1 + c + t>>32
	return hi, lo
}

// Taken evaluates a branch predicate.
func Taken(op Op, a, b uint64) bool {
	switch op {
	case BEQ:
		return a == b
	case BNE:
		return a != b
	case BLT:
		return int64(a) < int64(b)
	case BGE:
		return int64(a) >= int64(b)
	case BLTU:
		return a < b
	case BGEU:
		return a >= b
	}
	panic(fmt.Sprintf("isa: Taken on %v", op))
}
