// Package kernels is the constant-time crypto-kernel library behind
// `pandora contract`: real cryptographic primitives (ChaCha20,
// Poly1305, AES SubBytes in two implementations, a Montgomery-ladder
// conditional swap) lowered to the toy ISA with `.secret` labels on
// their keys and state, plus the contract-enumeration engine that sweeps
// each kernel under the taint scanner across the full optimization-mask
// space × cache variants — the machine-generated, scenario-diverse
// extension of the paper's Table I that Barthe et al. ("Testing
// side-channel security of cryptographic implementations against future
// microarchitectures") build by hand-picked example.
//
// Each kernel computes the genuine primitive (the package tests check
// every output byte against a Go reference implementation), so a
// verdict here is a statement about real crypto code, not a synthetic
// witness. Kernels register themselves as scan/trace scenarios through
// core.RegisterScenario, which makes every kernel reachable from
// `pandora scan`, `pandora trace`, and the serve job API without any
// edits to internal/core.
package kernels

import (
	"context"
	"fmt"
	"strings"

	"pandora/internal/asm"
	"pandora/internal/cache"
	"pandora/internal/core"
	"pandora/internal/diffcheck"
	"pandora/internal/dmp"
	"pandora/internal/mem"
	"pandora/internal/obs"
	"pandora/internal/pipeline"
	"pandora/internal/taint"
)

// Kernel is one crypto kernel: toy-ISA source with `.secret` labels,
// the memory image it runs against, and a reference check on its
// outputs.
type Kernel struct {
	// Name is the registry/CLI key, e.g. "chacha20-qr".
	Name string
	// Title is a one-line description for listings and reports.
	Title string
	// ConstantTime is the designed verdict under the baseline
	// constant-time contract (access addresses + branch predicates
	// observable) on the unoptimized machine: true means the kernel
	// must scan clean at mask 0, false marks a deliberate contrast
	// kernel (table-lookup AES) that violates the base contract.
	ConstantTime bool
	// Source is the assembly text, carrying the `.secret` directives
	// that label the kernel's key/state regions.
	Source string
	// Setup writes the kernel's inputs — secret values and public
	// tables — into data memory before a run. It must be deterministic.
	Setup func(m *mem.Memory)
	// Check verifies the kernel's outputs in post-run memory against a
	// Go reference implementation of the primitive.
	Check func(m *mem.Memory) error
}

// kernelTable is built by this file's init calling each per-kernel
// constructor explicitly — one authoritative display order, not
// file-name init-order luck.
var kernelTable []Kernel

func registerKernel(k Kernel) {
	for _, have := range kernelTable {
		if have.Name == k.Name {
			panic(fmt.Sprintf("kernels: duplicate kernel %q", k.Name))
		}
	}
	kernelTable = append(kernelTable, k)
}

// Kernels returns the kernel library in display order. The slice is the
// caller's to keep.
func Kernels() []Kernel {
	return append([]Kernel(nil), kernelTable...)
}

// KernelByName resolves one kernel.
func KernelByName(name string) (Kernel, bool) {
	for _, k := range kernelTable {
		if k.Name == name {
			return k, true
		}
	}
	return Kernel{}, false
}

// Names lists the kernel names in display order.
func Names() []string {
	out := make([]string, len(kernelTable))
	for i, k := range kernelTable {
		out[i] = k.Name
	}
	return out
}

// assemble caches nothing: kernels are small and the enumeration's cost
// is the pipeline run, not the assembler.
func (k Kernel) assemble() (asm.Unit, error) {
	unit, err := asm.AssembleUnit(k.Source)
	if err != nil {
		return asm.Unit{}, fmt.Errorf("kernels: %s: %w", k.Name, err)
	}
	if len(unit.Secrets) == 0 {
		return asm.Unit{}, fmt.Errorf("kernels: %s declares no .secret region", k.Name)
	}
	return unit, nil
}

// Run executes the kernel once on the pipeline under the taint scanner
// with the cache-address observer armed — the constant-time contract
// run. cfg chooses the optimizations under test; hcfg and stride choose
// the cache hierarchy (stride attaches the stride prefetcher, the
// diffcheck "stride-pbuf" variant). machine is the spec string recorded
// in the summary.
func Run(ctx context.Context, k Kernel, cfg pipeline.Config, hcfg cache.HierConfig, stride bool, machine string) (core.ScanSummary, error) {
	unit, err := k.assemble()
	if err != nil {
		return core.ScanSummary{}, err
	}
	st := taint.NewState()
	st.ObserveAddrs = true
	cfg.Taint = st
	flag, stop := pipeline.CancelFromContext(ctx)
	defer stop()
	cfg.Cancel = flag

	m := mem.New()
	if k.Setup != nil {
		k.Setup(m)
	}
	hier, err := cache.NewHierarchy(hcfg)
	if err != nil {
		return core.ScanSummary{}, err
	}
	if stride {
		hier.AddListener(dmp.NewStride(hier))
	}
	machineImpl, err := pipeline.New(cfg, m, hier)
	if err != nil {
		return core.ScanSummary{}, err
	}
	for _, s := range unit.Secrets {
		if _, err := st.DefineSecret(taint.Secret{Name: s.Name, Base: s.Base, Len: s.Len}); err != nil {
			return core.ScanSummary{}, err
		}
	}
	if _, err := machineImpl.Run(unit.Prog); err != nil {
		return core.ScanSummary{}, err
	}
	if k.Check != nil {
		if err := k.Check(m); err != nil {
			return core.ScanSummary{}, fmt.Errorf("kernels: %s: wrong output: %w", k.Name, err)
		}
	}
	return core.Summarize(st, k.Name, machine), nil
}

// baselineHier is the cache hierarchy the scan/trace scenarios use: the
// default geometry with self-checks on, matching diffcheck's
// "default-lru" variant.
func baselineHier() cache.HierConfig {
	h := cache.DefaultHierConfig()
	h.SelfCheck = true
	return h
}

// scanKernel is the scenario Scan entry: the kernel on the baseline
// machine (mask 0, default cache) under the base contract. Constant-time
// kernels report zero events here; aes-ttable reports its cache-addr
// leaks.
func scanKernel(ctx context.Context, k Kernel) (core.ScanSummary, error) {
	return Run(ctx, k, diffcheck.PipeConfig(0), baselineHier(), false, "")
}

// traceKernel is the scenario Trace entry: one cycle-accurate run of the
// kernel on the baseline machine with the probe attached.
func traceKernel(ctx context.Context, k Kernel, extra obs.Probe) (*core.TraceResult, error) {
	unit, err := k.assemble()
	if err != nil {
		return nil, err
	}
	st := taint.NewState()
	st.ObserveAddrs = true
	trace := obs.NewTrace()
	cfg := diffcheck.PipeConfig(0)
	cfg.Taint = st
	cfg.Probe = obs.Fanout(trace, extra)
	flag, stop := pipeline.CancelFromContext(ctx)
	defer stop()
	cfg.Cancel = flag

	m := mem.New()
	if k.Setup != nil {
		k.Setup(m)
	}
	hier, err := cache.NewHierarchy(baselineHier())
	if err != nil {
		return nil, err
	}
	machineImpl, err := pipeline.New(cfg, m, hier)
	if err != nil {
		return nil, err
	}
	for _, s := range unit.Secrets {
		if _, err := st.DefineSecret(taint.Secret{Name: s.Name, Base: s.Base, Len: s.Len}); err != nil {
			return nil, err
		}
	}
	res, err := machineImpl.Run(unit.Prog)
	if err != nil {
		return nil, err
	}
	return &core.TraceResult{
		Scenario: k.Name,
		Cycles:   res.Cycles,
		Retired:  res.Retired,
		Trace:    trace,
	}, nil
}

// init builds the library in its fixed display order — the clean
// implementations first, the deliberately contract-violating table
// lookup last among the AES pair's contrasts — and registers every
// kernel as a scan/trace scenario.
func init() {
	registerKernel(chachaQuarterRound())
	registerKernel(poly1305Accumulate())
	registerKernel(bsaesSubBytes())
	registerKernel(tableAESSubBytes())
	registerKernel(montLadderCSwap())
	for _, k := range Kernels() {
		k := k
		verdict := "base-contract clean"
		if !k.ConstantTime {
			verdict = "violates the base contract"
		}
		core.RegisterScenario(core.Scenario{
			Name:  k.Name,
			Title: fmt.Sprintf("%s (%s)", k.Title, verdict),
			Scan: func(ctx context.Context) (core.ScanSummary, error) {
				return scanKernel(ctx, k)
			},
			Trace: func(ctx context.Context, _ int64, _ int, extra obs.Probe) (*core.TraceResult, error) {
				return traceKernel(ctx, k, extra)
			},
		})
	}
}

// ValidateNames checks a kernel-name list against the library, returning
// the library order (not the request order) so two requests naming the
// same set canonicalize identically. An empty list means every kernel.
func ValidateNames(names []string) ([]string, error) {
	if len(names) == 0 {
		return Names(), nil
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		if _, ok := KernelByName(n); !ok {
			return nil, fmt.Errorf("kernels: unknown kernel %q (want %s)", n, strings.Join(Names(), ", "))
		}
		want[n] = true
	}
	var out []string
	for _, k := range kernelTable {
		if want[k.Name] {
			out = append(out, k.Name)
		}
	}
	return out, nil
}
