package kernels

import (
	"fmt"
	"math/bits"

	"pandora/internal/mem"
)

// ChaCha20 quarter-round (RFC 8439 §2.1) over four secret 32-bit state
// words. The round is add/xor/rotate only — the textbook constant-time
// primitive: fixed addresses, no branches, no data-dependent latencies
// on a baseline machine. Rotations are synthesized from shift pairs
// since the toy ISA has no rotate, with explicit 32-bit masking on the
// 64-bit datapath.

const (
	chachaStateAddr = 0x1000 // 4×u32 secret input state
	chachaOutAddr   = 0x2200 // 4×u32 output
)

// chachaInput is the quarter-round test vector from RFC 8439 §2.1.1.
var chachaInput = [4]uint32{0x11111111, 0x01020304, 0x9b8d6f43, 0x01234567}

// chachaQR is the reference quarter-round.
func chachaQR(a, b, c, d uint32) (uint32, uint32, uint32, uint32) {
	a += b
	d = bits.RotateLeft32(d^a, 16)
	c += d
	b = bits.RotateLeft32(b^c, 12)
	a += b
	d = bits.RotateLeft32(d^a, 8)
	c += d
	b = bits.RotateLeft32(b^c, 7)
	return a, b, c, d
}

// chachaRotl emits rotl32 of reg by n into reg, using t1/t2 as scratch
// and mask32 holding 0xffffffff.
func chachaRotl(reg string, n int, t1, t2, mask32 string) string {
	return fmt.Sprintf(`	slli %[2]s, %[1]s, %[4]d
	and  %[2]s, %[2]s, %[5]s
	srli %[3]s, %[1]s, %[6]d
	or   %[1]s, %[2]s, %[3]s
`, reg, t1, t2, n, mask32, 32-n)
}

// chachaSrc generates the quarter-round assembly: load the four state
// words, run the four add/xor/rotate steps, store the result.
func chachaSrc() string {
	var b []byte
	emit := func(s string, args ...any) { b = append(b, []byte(fmt.Sprintf(s, args...))...) }
	emit(".secret %#x, 16, state\n", chachaStateAddr)
	emit("	li   x12, %#x\n", chachaStateAddr)
	emit("	lwu  x5, 0(x12)\n")  // a
	emit("	lwu  x6, 4(x12)\n")  // b
	emit("	lwu  x7, 8(x12)\n")  // c
	emit("	lwu  x8, 12(x12)\n") // d
	emit("	li   x9, 0xffffffff\n")
	add32 := func(dst, src string) {
		emit("	add  %s, %s, %s\n", dst, dst, src)
		emit("	and  %s, %s, x9\n", dst, dst)
	}
	xor := func(dst, src string) { emit("	xor  %s, %s, %s\n", dst, dst, src) }
	// a+=b; d^=a; d<<<=16
	add32("x5", "x6")
	xor("x8", "x5")
	emit("%s", chachaRotl("x8", 16, "x10", "x11", "x9"))
	// c+=d; b^=c; b<<<=12
	add32("x7", "x8")
	xor("x6", "x7")
	emit("%s", chachaRotl("x6", 12, "x10", "x11", "x9"))
	// a+=b; d^=a; d<<<=8
	add32("x5", "x6")
	xor("x8", "x5")
	emit("%s", chachaRotl("x8", 8, "x10", "x11", "x9"))
	// c+=d; b^=c; b<<<=7
	add32("x7", "x8")
	xor("x6", "x7")
	emit("%s", chachaRotl("x6", 7, "x10", "x11", "x9"))
	emit("	li   x13, %#x\n", chachaOutAddr)
	emit("	sw   x5, 0(x13)\n")
	emit("	sw   x6, 4(x13)\n")
	emit("	sw   x7, 8(x13)\n")
	emit("	sw   x8, 12(x13)\n")
	emit("	halt\n")
	return string(b)
}

func chachaQuarterRound() Kernel {
	return Kernel{
		Name:         "chacha20-qr",
		Title:        "ChaCha20 quarter-round over secret state words (RFC 8439)",
		ConstantTime: true,
		Source:       chachaSrc(),
		Setup: func(m *mem.Memory) {
			for i, w := range chachaInput {
				m.Write(chachaStateAddr+uint64(i)*4, 4, uint64(w))
			}
		},
		Check: func(m *mem.Memory) error {
			a, b, c, d := chachaQR(chachaInput[0], chachaInput[1], chachaInput[2], chachaInput[3])
			want := [4]uint32{a, b, c, d}
			for i, w := range want {
				if got := uint32(m.Read(chachaOutAddr+uint64(i)*4, 4)); got != w {
					return fmt.Errorf("word %d = %#x, want %#x", i, got, w)
				}
			}
			return nil
		},
	}
}
