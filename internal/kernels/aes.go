package kernels

import (
	"fmt"

	"pandora/internal/bsaes"
	"pandora/internal/mem"
)

// The AES SubBytes pair: the same primitive implemented two ways, as the
// deliberate contrast the paper's Table I narrative turns on.
//
// aes-ttable looks each secret byte up in a 256-byte S-box table — the
// classical software implementation, and a textbook violation of the
// constant-time base contract: the load address IS the secret. The
// contract checker must flag it at mask 0, before any optimization is
// enabled.
//
// bsaes-sbox computes the same S-box branchlessly — GF(2⁸) inversion by
// the fixed 254 = 2+4+16+32+64+128+… addition chain, then the affine
// transform, transliterated from internal/bsaes's gfMul/gfInv into
// straight-line shift/mask/xor assembly. No secret ever reaches an
// address or a branch, so it is clean under the base contract; the
// enumeration then shows which optimizations break it anyway.

const (
	aesInAddr    = 0x1500 // secret input bytes
	aesTableAddr = 0x3000 // public 256-byte S-box table (ttable only)
	aesTTOutAddr = 0x2300 // ttable output
	aesBSOutAddr = 0x2500 // bsaes output
	aesTTBytes   = 16     // ttable: one full state
	aesBSBytes   = 2      // bsaes: unrolled, so fewer bytes keep it compact
)

// aesInput is the secret state both kernels substitute.
var aesInput = [16]byte{
	0x32, 0x88, 0x31, 0xe0, 0x43, 0x5a, 0x31, 0x37,
	0xf6, 0x30, 0x98, 0x07, 0xa8, 0x8d, 0xa2, 0x34,
}

func tableAESSubBytes() Kernel {
	src := fmt.Sprintf(`.secret %#x, %d, state
	li   x5, %#x        # in
	li   x6, %#x        # S-box table
	li   x7, %#x        # out
	li   x8, 0          # i (public)
	li   x14, %d
loop:
	add  x9, x5, x8
	lbu  x10, 0(x9)     # secret byte
	add  x11, x6, x10   # table + secret: the leak
	lbu  x12, 0(x11)
	add  x13, x7, x8
	sb   x12, 0(x13)
	addi x8, x8, 1
	blt  x8, x14, loop
	halt
`, aesInAddr, aesTTBytes, aesInAddr, aesTableAddr, aesTTOutAddr, aesTTBytes)
	return Kernel{
		Name:         "aes-ttable",
		Title:        "AES SubBytes by 256-byte table lookup (secret-indexed loads)",
		ConstantTime: false,
		Source:       src,
		Setup: func(m *mem.Memory) {
			for i := 0; i < 256; i++ {
				m.StoreByte(aesTableAddr+uint64(i), bsaes.SBox(byte(i)))
			}
			m.StoreBytes(aesInAddr, aesInput[:aesTTBytes])
		},
		Check: func(m *mem.Memory) error {
			return aesCheckSBox(m, aesTTOutAddr, aesTTBytes)
		},
	}
}

// aesCheckSBox verifies n S-box outputs at base against the bitslice
// reference (itself pinned to the FIPS-197 table by the bsaes tests).
func aesCheckSBox(m *mem.Memory, base uint64, n int) error {
	for i := 0; i < n; i++ {
		want := bsaes.SBox(aesInput[i])
		if got := m.LoadByte(base + uint64(i)); got != want {
			return fmt.Errorf("S(%#x) = %#x, want %#x", aesInput[i], got, want)
		}
	}
	return nil
}

// bsaesEmitGfMul appends a fully unrolled branchless GF(2⁸) multiply,
// dst = srcA · srcB mod x⁸+x⁴+x³+x+1, clobbering x14–x18. Direct
// transliteration of bsaes.gfMul: the conditional adds become masks
// built with neg (0−bit), never branches.
func bsaesEmitGfMul(emit func(string, ...any), dst, srcA, srcB string) {
	emit("	mv   x14, %s\n", srcA)
	emit("	mv   x15, %s\n", srcB)
	emit("	li   x16, 0\n")
	for i := 0; i < 8; i++ {
		emit("	andi x17, x15, 1\n")
		emit("	neg  x17, x17\n") // 0 or all-ones
		emit("	and  x17, x14, x17\n")
		emit("	xor  x16, x16, x17\n")
		emit("	srli x18, x14, 7\n")
		emit("	neg  x18, x18\n")
		emit("	andi x18, x18, 0x1b\n") // reduction poly if high bit set
		emit("	slli x14, x14, 1\n")
		emit("	andi x14, x14, 0xff\n")
		emit("	xor  x14, x14, x18\n")
		emit("	srli x15, x15, 1\n")
	}
	emit("	mv   %s, x16\n", dst)
}

// bsaesSrc generates the straight-line S-box kernel: per byte, 13 GF
// multiplies (the x²…x¹²⁸ squaring ladder folded into the accumulator)
// then the affine transform as rotate-xor pairs.
func bsaesSrc() string {
	var b []byte
	emit := func(s string, args ...any) { b = append(b, []byte(fmt.Sprintf(s, args...))...) }
	emit(".secret %#x, %d, state\n", aesInAddr, aesBSBytes)
	emit("	li   x20, %#x\n", aesInAddr)
	emit("	li   x21, %#x\n", aesBSOutAddr)
	for i := 0; i < aesBSBytes; i++ {
		emit("	lbu  x5, %d(x20)\n", i)
		// gfInv: cur = x², acc = cur; 6×{cur = cur², acc ·= cur}
		bsaesEmitGfMul(emit, "x6", "x5", "x5")
		emit("	mv   x7, x6\n")
		for j := 0; j < 6; j++ {
			bsaesEmitGfMul(emit, "x6", "x6", "x6")
			bsaesEmitGfMul(emit, "x7", "x7", "x6")
		}
		// affine: s = inv ^ rotl(inv,1..4) ^ 0x63
		emit("	mv   x8, x7\n")
		for n := 1; n <= 4; n++ {
			emit("	slli x9, x7, %d\n", n)
			emit("	srli x10, x7, %d\n", 8-n)
			emit("	or   x9, x9, x10\n")
			emit("	andi x9, x9, 0xff\n")
			emit("	xor  x8, x8, x9\n")
		}
		emit("	xori x8, x8, 0x63\n")
		emit("	sb   x8, %d(x21)\n", i)
	}
	emit("	halt\n")
	return string(b)
}

func bsaesSubBytes() Kernel {
	return Kernel{
		Name:         "bsaes-sbox",
		Title:        "AES SubBytes computed branchlessly (GF(2⁸) inversion chain)",
		ConstantTime: true,
		Source:       bsaesSrc(),
		Setup: func(m *mem.Memory) {
			m.StoreBytes(aesInAddr, aesInput[:aesBSBytes])
		},
		Check: func(m *mem.Memory) error {
			return aesCheckSBox(m, aesBSOutAddr, aesBSBytes)
		},
	}
}
