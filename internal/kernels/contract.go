package kernels

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"pandora/internal/diffcheck"
	"pandora/internal/parallel"
	"pandora/internal/taint"
)

// The contract-enumeration engine: every kernel × every optimization
// mask × every cache variant, each cell scanned under the taint engine
// with the cache-address observer armed, classified clean or leaking.
// The result is the machine-generated extension of the paper's Table I
// over real crypto kernels instead of hand-built witnesses.

// Options bounds an enumeration. Zero values mean "everything": all
// kernels, all 2⁹ masks, all cache variants.
type Options struct {
	// Kernels selects a subset by name (library order is imposed).
	Kernels []string
	// Masks selects a subset of diffcheck toggle masks.
	Masks []diffcheck.ToggleMask
	// Variants selects a subset of diffcheck cache-variant names.
	Variants []string
	// Workers sizes the parallel.Map pool (0 = GOMAXPROCS). The report
	// is byte-identical for every worker count.
	Workers int
}

// Cell is one (mask, variant) scan of one kernel.
type Cell struct {
	Mask    uint16   `json:"mask"`
	Variant string   `json:"variant"`
	Classes []string `json:"classes,omitempty"` // leak classes, class order
}

// FirstEvent is the earliest leak event of one class across a kernel's
// whole enumeration, in (variant, mask, event) order — the exemplar the
// report prints.
type FirstEvent struct {
	Mask    uint16   `json:"mask"`
	MaskStr string   `json:"mask_str"`
	Variant string   `json:"variant"`
	Cycle   int64    `json:"cycle"`
	PC      int64    `json:"pc"`
	Labels  []string `json:"labels,omitempty"`
	Detail  string   `json:"detail,omitempty"`
}

// ClassReport aggregates one leak class over a kernel's enumeration.
type ClassReport struct {
	Class  string     `json:"class"`
	MLDRef string     `json:"mld"`
	Cells  int        `json:"cells"` // cells where the class fired
	First  FirstEvent `json:"first"`
}

// VariantReport aggregates one cache variant over a kernel's masks.
type VariantReport struct {
	Variant string `json:"variant"`
	Clean   int    `json:"clean"`
	Leaking int    `json:"leaking"`
	// LeakMask is a hex bitmap over the enumerated masks (bit i = the
	// i-th mask in the enumeration order leaked), so two reports can be
	// diffed cell-exactly without carrying every cell.
	LeakMask string `json:"leak_mask"`
}

// KernelReport is one kernel's verdict matrix.
type KernelReport struct {
	Kernel       string `json:"kernel"`
	Title        string `json:"title"`
	ConstantTime bool   `json:"constant_time"`
	// BaselineVerdict is the mask-0, first-variant cell: "clean" or
	// "leaks" — the constant-time base-contract verdict.
	BaselineVerdict string          `json:"baseline_verdict"`
	Verdict         string          `json:"verdict"` // "clean" | "leaks"
	Variants        []VariantReport `json:"variants"`
	Classes         []ClassReport   `json:"classes,omitempty"`
}

// Report is the Table-I extension over the kernel library.
type Report struct {
	Masks    int            `json:"masks"`
	Variants []string       `json:"variants"`
	Kernels  []KernelReport `json:"kernels"`
}

// cell work item for parallel.Map.
type cellItem struct {
	kernel  Kernel
	mask    diffcheck.ToggleMask
	variant diffcheck.CacheVariant
}

type cellResult struct {
	classes []taint.OptClass
	first   map[taint.OptClass]FirstEvent
}

// Enumerate sweeps the selected kernels over the selected masks ×
// variants on the parallel engine. Results are deterministic and
// independent of Workers: items are enumerated in (kernel, variant,
// mask) order and folded in that order.
func Enumerate(ctx context.Context, opt Options) (*Report, error) {
	names, err := ValidateNames(opt.Kernels)
	if err != nil {
		return nil, err
	}
	masks := opt.Masks
	if len(masks) == 0 {
		masks = make([]diffcheck.ToggleMask, diffcheck.AllMasks)
		for i := range masks {
			masks[i] = diffcheck.ToggleMask(i)
		}
	}
	variants, err := selectVariants(opt.Variants)
	if err != nil {
		return nil, err
	}

	var items []cellItem
	for _, name := range names {
		k, _ := KernelByName(name)
		for _, v := range variants {
			for _, mask := range masks {
				items = append(items, cellItem{kernel: k, mask: mask, variant: v})
			}
		}
	}

	results, err := parallel.Map(ctx, opt.Workers, items, func(ctx context.Context, _ int, it cellItem) (cellResult, error) {
		return runCell(ctx, it)
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{Masks: len(masks)}
	for _, v := range variants {
		rep.Variants = append(rep.Variants, v.Name)
	}
	idx := 0
	for _, name := range names {
		k, _ := KernelByName(name)
		kr := KernelReport{Kernel: k.Name, Title: k.Title, ConstantTime: k.ConstantTime}
		firsts := make(map[taint.OptClass]FirstEvent)
		cellsPerClass := make(map[taint.OptClass]int)
		anyLeak := false
		for _, v := range variants {
			vr := VariantReport{Variant: v.Name}
			bitmap := make([]byte, (len(masks)+7)/8)
			for mi, mask := range masks {
				res := results[idx]
				idx++
				if len(res.classes) == 0 {
					vr.Clean++
					continue
				}
				vr.Leaking++
				anyLeak = true
				bitmap[mi/8] |= 1 << (mi % 8)
				for _, c := range res.classes {
					cellsPerClass[c]++
					if _, seen := firsts[c]; !seen {
						firsts[c] = res.first[c]
					}
				}
				if v.Name == variants[0].Name && mask == 0 {
					kr.BaselineVerdict = "leaks"
				}
			}
			vr.LeakMask = fmt.Sprintf("%x", bitmap)
			kr.Variants = append(kr.Variants, vr)
		}
		if kr.BaselineVerdict == "" {
			kr.BaselineVerdict = "clean"
		}
		kr.Verdict = "clean"
		if anyLeak {
			kr.Verdict = "leaks"
		}
		var classes []taint.OptClass
		for c := range cellsPerClass {
			classes = append(classes, c)
		}
		sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
		for _, c := range classes {
			kr.Classes = append(kr.Classes, ClassReport{
				Class:  c.String(),
				MLDRef: c.MLDRef(),
				Cells:  cellsPerClass[c],
				First:  firsts[c],
			})
		}
		rep.Kernels = append(rep.Kernels, kr)
	}
	return rep, nil
}

// runCell scans one kernel under one mask on one cache variant.
func runCell(ctx context.Context, it cellItem) (cellResult, error) {
	sum, err := Run(ctx, it.kernel, diffcheck.PipeConfig(it.mask), it.variant.Config, it.variant.Stride, it.mask.String())
	if err != nil {
		return cellResult{}, fmt.Errorf("%s/%s/mask %#x: %w", it.kernel.Name, it.variant.Name, uint16(it.mask), err)
	}
	res := cellResult{first: make(map[taint.OptClass]FirstEvent)}
	seen := make(map[string]taint.OptClass)
	for i := 0; i < taint.NumOptClasses; i++ {
		c := taint.OptClass(i)
		seen[c.String()] = c
	}
	counted := make(map[taint.OptClass]bool)
	for _, ev := range sum.Events {
		c, ok := seen[ev.Opt]
		if !ok {
			continue
		}
		if !counted[c] {
			counted[c] = true
			res.classes = append(res.classes, c)
			res.first[c] = FirstEvent{
				Mask:    uint16(it.mask),
				MaskStr: it.mask.String(),
				Variant: it.variant.Name,
				Cycle:   ev.Cycle,
				PC:      ev.PC,
				Labels:  ev.Labels,
				Detail:  ev.Detail,
			}
		}
	}
	// Classes whose events were all dropped by the recorder cap still
	// count: fall back to the exact counters.
	for _, bc := range sum.ByClass {
		c, ok := seen[bc.Opt]
		if !ok || counted[c] {
			continue
		}
		counted[c] = true
		res.classes = append(res.classes, c)
		res.first[c] = FirstEvent{Mask: uint16(it.mask), MaskStr: it.mask.String(), Variant: it.variant.Name, Cycle: -1, PC: -1}
	}
	sort.Slice(res.classes, func(i, j int) bool { return res.classes[i] < res.classes[j] })
	return res, nil
}

// selectVariants resolves variant names against diffcheck.CacheVariants,
// in the harness order. Empty means all.
func selectVariants(names []string) ([]diffcheck.CacheVariant, error) {
	all := diffcheck.CacheVariants()
	if len(names) == 0 {
		return all, nil
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []diffcheck.CacheVariant
	for _, v := range all {
		if want[v.Name] {
			out = append(out, v)
			delete(want, v.Name)
		}
	}
	if len(want) > 0 {
		var missing []string
		for n := range want {
			missing = append(missing, n)
		}
		sort.Strings(missing)
		var have []string
		for _, v := range all {
			have = append(have, v.Name)
		}
		return nil, fmt.Errorf("kernels: unknown cache variant(s) %s (want %s)",
			strings.Join(missing, ", "), strings.Join(have, ", "))
	}
	return out, nil
}

// ValidateVariants checks a cache-variant name list against the
// diffcheck harness, returning harness order (empty = every variant) so
// equivalent requests canonicalize identically — the variant-side twin
// of ValidateNames.
func ValidateVariants(names []string) ([]string, error) {
	vs, err := selectVariants(names)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Name
	}
	return out, nil
}

// Marshal renders the report deterministically (struct field order,
// two-space indent, trailing newline) — the committed golden form.
func (r *Report) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Format renders the human-readable Table-I-extension text.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Leakage-contract enumeration: %d kernels × %d masks × %d cache variants\n",
		len(r.Kernels), r.Masks, len(r.Variants))
	fmt.Fprintf(&b, "Base contract: memory-access addresses and branch predicates observable.\n\n")
	for _, k := range r.Kernels {
		design := "constant-time"
		if !k.ConstantTime {
			design = "deliberately non-ct"
		}
		fmt.Fprintf(&b, "%s — %s\n", k.Kernel, k.Title)
		fmt.Fprintf(&b, "  design: %s   baseline: %s   overall: %s\n", design, k.BaselineVerdict, k.Verdict)
		for _, v := range k.Variants {
			fmt.Fprintf(&b, "  %-16s clean %3d / leaking %3d of %d masks\n", v.Variant, v.Clean, v.Leaking, r.Masks)
		}
		if len(k.Classes) > 0 {
			fmt.Fprintf(&b, "  leak classes:\n")
			for _, c := range k.Classes {
				fmt.Fprintf(&b, "    %-22s mld=%-20s cells=%4d  first: variant=%s mask=%s",
					c.Class, c.MLDRef, c.Cells, c.First.Variant, c.First.MaskStr)
				if c.First.Cycle >= 0 {
					fmt.Fprintf(&b, " cycle=%d pc=%d", c.First.Cycle, c.First.PC)
				}
				if len(c.First.Labels) > 0 {
					fmt.Fprintf(&b, " labels=%s", strings.Join(c.First.Labels, "+"))
				}
				fmt.Fprintf(&b, "\n")
			}
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}
