package kernels

import (
	"context"
	"fmt"
	"testing"

	"pandora/internal/asm"
	"pandora/internal/diffcheck"
	"pandora/internal/emu"
	"pandora/internal/mem"
)

// TestKernelReferenceOutputs runs every kernel on the functional
// emulator and verifies its outputs against the Go reference
// implementation of the primitive (Check): the kernels compute real
// crypto, not plausible-looking arithmetic.
func TestKernelReferenceOutputs(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			unit, err := k.assemble()
			if err != nil {
				t.Fatal(err)
			}
			m := mem.New()
			k.Setup(m)
			mc := emu.New(m)
			if err := mc.Run(unit.Prog, 1_000_000); err != nil {
				t.Fatalf("emulator: %v", err)
			}
			if err := k.Check(m); err != nil {
				t.Fatalf("reference mismatch: %v", err)
			}
		})
	}
}

// TestKernelBaselineVerdicts scans every kernel on the baseline machine
// (mask 0, default cache) under the base contract: the constant-time
// kernels must be spotless, the table-lookup AES must leak through its
// access addresses — and nothing else.
func TestKernelBaselineVerdicts(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			sum, err := scanKernel(context.Background(), k)
			if err != nil {
				t.Fatal(err)
			}
			if k.ConstantTime {
				if sum.Total != 0 {
					t.Fatalf("designed constant-time but recorded %d leak events: %+v", sum.Total, sum.ByClass)
				}
				return
			}
			if !sum.HasLeak("cache-addr", "state") {
				t.Fatalf("table lookup must leak state through cache-addr; got %+v", sum.ByClass)
			}
			for _, bc := range sum.ByClass {
				if bc.Opt != "cache-addr" {
					t.Errorf("unexpected baseline class %q", bc.Opt)
				}
			}
		})
	}
}

// TestKernelSecretsLabeled asserts every kernel declares at least one
// .secret region and that the assembler accepts the generated source.
func TestKernelSecretsLabeled(t *testing.T) {
	for _, k := range Kernels() {
		unit, err := asm.AssembleUnit(k.Source)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if len(unit.Secrets) == 0 {
			t.Fatalf("%s: no .secret region", k.Name)
		}
	}
}

// TestEnumerateDeterministic checks the acceptance bar for the report:
// the marshalled bytes are identical at 1 worker and at 8, over a
// representative slice of the space (one ct kernel, one violating
// kernel, a handful of masks, two cache variants).
func TestEnumerateDeterministic(t *testing.T) {
	opt := Options{
		Kernels:  []string{"aes-ttable", "montladder-cswap"},
		Masks:    []diffcheck.ToggleMask{0, diffcheck.TogSilentStores, diffcheck.TogSimplifier},
		Variants: []string{"default-lru", "tiny-plru-pow2"},
	}
	opt.Workers = 1
	rep1, err := Enumerate(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 8
	rep8, err := Enumerate(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := rep1.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b8, err := rep8.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b8) {
		t.Fatalf("report differs between 1 and 8 workers:\n%s\n----\n%s", b1, b8)
	}
	if rep1.Kernels[0].Kernel != "aes-ttable" || rep1.Kernels[0].BaselineVerdict != "leaks" {
		t.Fatalf("aes-ttable baseline verdict: %+v", rep1.Kernels[0])
	}
	if rep1.Kernels[1].BaselineVerdict != "clean" || rep1.Kernels[1].Verdict != "leaks" {
		t.Fatalf("montladder-cswap verdicts: %+v", rep1.Kernels[1])
	}
}

// TestValidateNames pins the selection semantics: empty means all, in
// library order; order of the request does not matter; unknown names
// error.
func TestValidateNames(t *testing.T) {
	all, err := ValidateNames(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(Kernels()) {
		t.Fatalf("got %d names, want %d", len(all), len(Kernels()))
	}
	sub, err := ValidateNames([]string{"bsaes-sbox", "chacha20-qr"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 2 || sub[0] != "chacha20-qr" || sub[1] != "bsaes-sbox" {
		t.Fatalf("library order not imposed: %v", sub)
	}
	if _, err := ValidateNames([]string{"no-such-kernel"}); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

// TestKnownOptimizationLeaks pins the headline Table-I cells: silent
// stores break the branchless cswap, and computation simplification
// breaks even the bitslice AES and ChaCha kernels.
func TestKnownOptimizationLeaks(t *testing.T) {
	cases := []struct {
		kernel string
		mask   diffcheck.ToggleMask
		class  string
	}{
		{"montladder-cswap", diffcheck.TogSilentStores, "silent-store"},
		{"chacha20-qr", diffcheck.TogSimplifier, "comp-simplification"},
		{"bsaes-sbox", diffcheck.TogSimplifier, "comp-simplification"},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s-%s", tc.kernel, tc.class), func(t *testing.T) {
			k, ok := KernelByName(tc.kernel)
			if !ok {
				t.Fatalf("kernel %q missing", tc.kernel)
			}
			sum, err := Run(context.Background(), k, diffcheck.PipeConfig(tc.mask), baselineHier(), false, tc.mask.String())
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, bc := range sum.ByClass {
				if bc.Opt == tc.class {
					found = true
				}
			}
			if !found {
				t.Fatalf("expected %s leak under mask %s; got %+v", tc.class, tc.mask, sum.ByClass)
			}
		})
	}
}
