package kernels

import (
	"fmt"
	"math/big"

	"pandora/internal/mem"
)

// Poly1305 accumulation step: h = (h + m) · r mod 2¹³⁰−5, in the
// classical 5×26-bit limb representation (Bernstein; the donna/stdlib
// layout). With 26-bit limbs every partial product fits a 64-bit
// register — h·2⁶⁴ never materializes — so the whole step is
// straight-line mul/add/shift/mask arithmetic on fixed addresses: a
// constant-time kernel with genuinely secret-dependent multiplier
// operands, exactly the shape zero-skip multipliers and value
// predictors break.
//
// Memory image (all little-endian 64-bit words):
//
//	0x1000  h[0..4]  secret accumulator limbs
//	0x1100  r[0..4]  secret clamped key limbs
//	0x1180  s[1..4]  secret 5·r[1..4] (precomputed, as in every
//	                 production implementation)
//	0x1200  m[0..4]  public message-block limbs (2¹²⁸ pad bit applied)
//	0x2280  out h'[0..4]

const (
	polyHAddr   = 0x1000
	polyRAddr   = 0x1100
	polySAddr   = 0x1180
	polyMAddr   = 0x1200
	polyOutAddr = 0x2280
)

// Test vector: the first block of the RFC 8439 §2.5.2 example.
var (
	polyR = [16]byte{ // clamped r from key "85d6be78..."
		0x85, 0xd6, 0xbe, 0x78, 0x57, 0x55, 0x6d, 0x33,
		0x7f, 0x44, 0x52, 0xfe, 0x42, 0xd5, 0x06, 0xa8,
	}
	polyMsg = [16]byte{ // "Cryptographic Fo"
		'C', 'r', 'y', 'p', 't', 'o', 'g', 'r',
		'a', 'p', 'h', 'i', 'c', ' ', 'F', 'o',
	}
	// polyH0 is a nonzero accumulator so the step exercises the h+m
	// path (mid-message state rather than the first block's zero).
	polyH0 = [5]uint64{0x2031337, 0x1ffffff, 0x0abcdef, 0x3000001, 0x0000042}
)

const poly26Mask = (1 << 26) - 1

// polyClampR applies the RFC 8439 clamp to the little-endian r bytes.
func polyClampR(r [16]byte) [16]byte {
	r[3] &= 15
	r[7] &= 15
	r[11] &= 15
	r[15] &= 15
	r[4] &= 252
	r[8] &= 252
	r[12] &= 252
	return r
}

// polyLimbs splits a 130-bit little-endian value (16 bytes + pad bit)
// into five 26-bit limbs.
func polyLimbs(b [16]byte, padBit bool) [5]uint64 {
	le := func(off, n int) uint64 {
		var v uint64
		for i := 0; i < n; i++ {
			v |= uint64(b[off+i]) << (8 * i)
		}
		return v
	}
	l0 := le(0, 8)
	l1 := le(8, 8)
	var out [5]uint64
	out[0] = l0 & poly26Mask
	out[1] = (l0 >> 26) & poly26Mask
	out[2] = ((l0 >> 52) | (l1 << 12)) & poly26Mask
	out[3] = (l1 >> 14) & poly26Mask
	out[4] = l1 >> 40
	if padBit {
		out[4] |= 1 << 24
	}
	return out
}

// polyP is 2¹³⁰−5.
func polyP() *big.Int {
	p := new(big.Int).Lsh(big.NewInt(1), 130)
	return p.Sub(p, big.NewInt(5))
}

// polyJoin reassembles 26-bit-weighted limbs into an integer. Limbs may
// carry unpropagated excess (the kernel's output is partially reduced,
// like every production implementation's inner loop), so the join is a
// weighted sum, not a bit-concatenation.
func polyJoin(l [5]uint64) *big.Int {
	v := new(big.Int)
	for i := 4; i >= 0; i-- {
		v.Lsh(v, 26)
		v.Add(v, new(big.Int).SetUint64(l[i]))
	}
	return v
}

// polyRefStep is the math/big reference: ((h + m) · r) mod 2¹³⁰−5.
func polyRefStep(h, r, m [5]uint64) *big.Int {
	hv := polyJoin(h)
	hv.Add(hv, polyJoin(m))
	hv.Mul(hv, polyJoin(r))
	return hv.Mod(hv, polyP())
}

// polySrc generates the accumulation step: 19 loads, the 25-term
// schoolbook product with the 5·r folding, one carry chain, 5 stores.
// Registers: h in x5–x9, r in x10–x14, s=5r in x15–x18, d accumulators
// in x20–x24, scratch x25–x26, bases x27–x29, mask x30.
func polySrc() string {
	var b []byte
	emit := func(s string, args ...any) { b = append(b, []byte(fmt.Sprintf(s, args...))...) }
	emit(".secret %#x, 40, h\n", polyHAddr)
	emit(".secret %#x, 40, r\n", polyRAddr)
	emit(".secret %#x, 32, s\n", polySAddr)
	emit("	li   x27, %#x\n", polyHAddr)
	emit("	li   x28, %#x\n", polyRAddr)
	emit("	li   x29, %#x\n", polyMAddr)
	for i := 0; i < 5; i++ {
		emit("	ld   x%d, %d(x27)\n", 5+i, 8*i)
	}
	for i := 0; i < 5; i++ {
		emit("	ld   x%d, %d(x28)\n", 10+i, 8*i)
	}
	emit("	li   x27, %#x\n", polySAddr) // reuse h base for s
	for i := 1; i < 5; i++ {
		emit("	ld   x%d, %d(x27)\n", 14+i, 8*(i-1))
	}
	// h += m (public message limbs)
	for i := 0; i < 5; i++ {
		emit("	ld   x25, %d(x29)\n", 8*i)
		emit("	add  x%d, x%d, x25\n", 5+i, 5+i)
	}
	// d[j] = Σ_i h[i]·(i<=j ? r[j-i] : s[5+j-i])  — the mod-p folding:
	// limb products past 2^130 wrap with weight 5, absorbed into s=5r.
	reg := func(i int) string { return fmt.Sprintf("x%d", i) }
	for j := 0; j < 5; j++ {
		d := reg(20 + j)
		first := true
		for i := 0; i < 5; i++ {
			var mulsrc string
			if i <= j {
				mulsrc = reg(10 + (j - i)) // r[j-i]
			} else {
				mulsrc = reg(14 + (5 + j - i)) // s[5+j-i]
			}
			if first {
				emit("	mul  %s, %s, %s\n", d, reg(5+i), mulsrc)
				first = false
			} else {
				emit("	mul  x25, %s, %s\n", reg(5+i), mulsrc)
				emit("	add  %s, %s, x25\n", d, d)
			}
		}
	}
	// Carry propagation back to 26-bit limbs (one extra fold of the
	// top carry with weight 5, then a final h0 -> h1 carry).
	emit("	li   x30, %#x\n", poly26Mask)
	for j := 0; j < 4; j++ {
		emit("	srli x25, x%d, 26\n", 20+j)
		emit("	and  x%d, x%d, x30\n", 20+j, 20+j)
		emit("	add  x%d, x%d, x25\n", 21+j, 21+j)
	}
	emit("	srli x25, x24, 26\n")
	emit("	and  x24, x24, x30\n")
	emit("	slli x26, x25, 2\n") // c*5 = c*4 + c
	emit("	add  x25, x25, x26\n")
	emit("	add  x20, x20, x25\n")
	emit("	srli x25, x20, 26\n")
	emit("	and  x20, x20, x30\n")
	emit("	add  x21, x21, x25\n")
	emit("	li   x29, %#x\n", polyOutAddr)
	for j := 0; j < 5; j++ {
		emit("	sd   x%d, %d(x29)\n", 20+j, 8*j)
	}
	emit("	halt\n")
	return string(b)
}

func poly1305Accumulate() Kernel {
	r := polyLimbs(polyClampR(polyR), false)
	m := polyLimbs(polyMsg, true)
	return Kernel{
		Name:         "poly1305-acc",
		Title:        "Poly1305 h = (h+m)·r mod 2¹³⁰−5 accumulation step (RFC 8439)",
		ConstantTime: true,
		Source:       polySrc(),
		Setup: func(mm *mem.Memory) {
			for i := 0; i < 5; i++ {
				mm.Write(polyHAddr+uint64(8*i), 8, polyH0[i])
				mm.Write(polyRAddr+uint64(8*i), 8, r[i])
				mm.Write(polyMAddr+uint64(8*i), 8, m[i])
			}
			for i := 1; i < 5; i++ {
				mm.Write(polySAddr+uint64(8*(i-1)), 8, 5*r[i])
			}
		},
		Check: func(mm *mem.Memory) error {
			var out [5]uint64
			for i := 0; i < 5; i++ {
				out[i] = mm.Read(polyOutAddr+uint64(8*i), 8)
			}
			got := polyJoin(out)
			got.Mod(got, polyP())
			if want := polyRefStep(polyH0, r, m); got.Cmp(want) != 0 {
				return fmt.Errorf("h' ≡ %#x, want %#x (limbs %#x)", got, want, out)
			}
			return nil
		},
	}
}
