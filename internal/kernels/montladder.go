package kernels

import (
	"fmt"

	"pandora/internal/mem"
)

// Montgomery-ladder conditional swap: the branchless big-num cswap at
// the heart of every X25519/P-256 ladder step. mask = 0−bit; for each
// limb t = (x^y)&mask, x^=t, y^=t — so both limb arrays are read and
// written whether or not the swap happens, and the addresses never
// depend on the secret bit. Constant time under the base contract; the
// interesting failure is silent stores: when bit = 0 every store writes
// back the value already in memory, so a store-elision check compares
// secret-derived data and the "free" optimization reintroduces the
// timing difference the branchless form was written to kill.

const (
	montXAddr   = 0x1600 // 4×u64 secret limb array X
	montYAddr   = 0x1640 // 4×u64 secret limb array Y
	montBitAddr = 0x1680 // secret swap bit (u64, 0 or 1)
	montLimbs   = 4
)

var (
	montX = [montLimbs]uint64{0x243f6a8885a308d3, 0x13198a2e03707344, 0xa4093822299f31d0, 0x082efa98ec4e6c89}
	montY = [montLimbs]uint64{0x452821e638d01377, 0xbe5466cf34e90c6c, 0xc0ac29b7c97c50dd, 0x3f84d5b5b5470917}
	// montBit is 0: the no-swap case, which is the case silent stores
	// turn observable (every write-back is silent).
	montBit = uint64(0)
)

func montSrc() string {
	var b []byte
	emit := func(s string, args ...any) { b = append(b, []byte(fmt.Sprintf(s, args...))...) }
	emit(".secret %#x, %d, x\n", montXAddr, montLimbs*8)
	emit(".secret %#x, %d, y\n", montYAddr, montLimbs*8)
	emit(".secret %#x, 8, bit\n", montBitAddr)
	emit("	li   x5, %#x\n", montXAddr)
	emit("	li   x6, %#x\n", montYAddr)
	emit("	li   x7, %#x\n", montBitAddr)
	emit("	ld   x8, 0(x7)\n")
	emit("	neg  x9, x8\n") // mask = 0 - bit
	for i := 0; i < montLimbs; i++ {
		emit("	ld   x10, %d(x5)\n", 8*i)
		emit("	ld   x11, %d(x6)\n", 8*i)
		emit("	xor  x12, x10, x11\n")
		emit("	and  x12, x12, x9\n")
		emit("	xor  x10, x10, x12\n")
		emit("	xor  x11, x11, x12\n")
		emit("	sd   x10, %d(x5)\n", 8*i)
		emit("	sd   x11, %d(x6)\n", 8*i)
	}
	emit("	halt\n")
	return string(b)
}

func montLadderCSwap() Kernel {
	return Kernel{
		Name:         "montladder-cswap",
		Title:        "Montgomery-ladder branchless conditional limb swap",
		ConstantTime: true,
		Source:       montSrc(),
		Setup: func(m *mem.Memory) {
			for i := 0; i < montLimbs; i++ {
				m.Write(montXAddr+uint64(8*i), 8, montX[i])
				m.Write(montYAddr+uint64(8*i), 8, montY[i])
			}
			m.Write(montBitAddr, 8, montBit)
		},
		Check: func(m *mem.Memory) error {
			wantX, wantY := montX, montY
			if montBit != 0 {
				wantX, wantY = wantY, wantX
			}
			for i := 0; i < montLimbs; i++ {
				if got := m.Read(montXAddr+uint64(8*i), 8); got != wantX[i] {
					return fmt.Errorf("x[%d] = %#x, want %#x", i, got, wantX[i])
				}
				if got := m.Read(montYAddr+uint64(8*i), 8); got != wantY[i] {
					return fmt.Errorf("y[%d] = %#x, want %#x", i, got, wantY[i])
				}
			}
			return nil
		},
	}
}
