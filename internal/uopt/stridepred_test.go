package uopt

import "testing"

func TestStridePredictorBasics(t *testing.T) {
	p := NewStridePredictor(0) // clamps to 1
	if p.Threshold != 1 {
		t.Errorf("threshold = %d", p.Threshold)
	}
	// Train stride 5.
	for _, v := range []uint64{10, 15, 20} {
		p.Resolve(3, v, false, 0)
	}
	v, ok := p.Predict(3)
	if !ok || v != 25 {
		t.Fatalf("Predict = %d, %v; want 25", v, ok)
	}
	// In-flight pending: a second prediction before the first resolves
	// looks two strides ahead.
	v2, ok := p.Predict(3)
	if !ok || v2 != 30 {
		t.Errorf("second in-flight Predict = %d, want 30", v2)
	}
	if mis := p.Resolve(3, 25, true, v); mis {
		t.Error("correct prediction flagged")
	}
	if mis := p.Resolve(3, 30, true, v2); mis {
		t.Error("correct second prediction flagged")
	}
	if p.Correct != 2 || p.Mispredictions != 0 {
		t.Errorf("stats: %+v", p)
	}
}

func TestStridePredictorSquashResetsPending(t *testing.T) {
	p := NewStridePredictor(1)
	for _, v := range []uint64{8, 16, 24} {
		p.Resolve(1, v, false, 0)
	}
	p.Predict(1)
	p.Predict(1)
	p.Squash()
	v, ok := p.Predict(1)
	if !ok || v != 32 {
		t.Errorf("post-squash Predict = %d, want 32 (pending reset)", v)
	}
}

func TestStridePredictorFlushAndUnknownPC(t *testing.T) {
	p := NewStridePredictor(1)
	if _, ok := p.Predict(42); ok {
		t.Error("prediction for unseen pc")
	}
	p.Resolve(1, 10, false, 0)
	p.Resolve(1, 20, false, 0)
	p.Resolve(1, 30, false, 0)
	p.Flush()
	if _, ok := p.Predict(1); ok {
		t.Error("prediction survived Flush")
	}
}

func TestStridePredictorZeroStride(t *testing.T) {
	// Constant values are a zero stride: behaves like last-value.
	p := NewStridePredictor(1)
	p.Resolve(9, 7, false, 0)
	p.Resolve(9, 7, false, 0)
	p.Resolve(9, 7, false, 0)
	v, ok := p.Predict(9)
	if !ok || v != 7 {
		t.Errorf("constant-value prediction = %d, %v", v, ok)
	}
}

func TestLastValuePredictorSquashNoop(t *testing.T) {
	p := NewPredictor(1)
	p.Resolve(1, 5, false, 0)
	p.Resolve(1, 5, false, 0)
	p.Squash() // must not clear confidence
	if _, ok := p.Predict(1); !ok {
		t.Error("Squash cleared last-value state")
	}
	p.Flush()
	if _, ok := p.Predict(1); ok {
		t.Error("Flush did not clear state")
	}
	if p.Confidence(999) != 0 {
		t.Error("confidence for unseen pc")
	}
}

func TestStrengthReductionUnit(t *testing.T) {
	s := &Simplifier{StrengthReduction: true}
	if lat, ok := s.SimplifiedLatency(KindMul, 64, 999, 4); !ok || lat != 1 {
		t.Errorf("mul by 64: %d %v", lat, ok)
	}
	if lat, ok := s.SimplifiedLatency(KindMul, 999, 6, 4); ok || lat != 4 {
		t.Errorf("mul by 6: %d %v", lat, ok)
	}
	if _, ok := s.SimplifiedLatency(KindMul, 0, 0, 4); ok {
		t.Error("zero is not a power of two for strength reduction")
	}
}

func TestStringers(t *testing.T) {
	cases := map[string]string{
		SchemeSv.String():    "Sv",
		SchemeSn.String():    "Sn",
		RFCOff.String():      "rfc-off",
		RFCZeroOne.String():  "rfc-0/1",
		RFCAnyValue.String(): "rfc-any",
		KindSimple.String():  "simple",
		KindMul.String():     "mul",
		KindDiv.String():     "div",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestPackerNotePacked(t *testing.T) {
	p := NewPacker()
	p.NotePacked()
	p.NotePacked()
	if p.Packed != 2 {
		t.Errorf("Packed = %d", p.Packed)
	}
	// Default threshold applies when zero.
	p2 := &Packer{}
	if !p2.Narrow(0xffff) || p2.Narrow(0x1ffff) {
		t.Error("default threshold wrong")
	}
}

func TestValueFileLiveNil(t *testing.T) {
	var vf *ValueFile
	if vf.Live(5) != 0 {
		t.Error("nil ValueFile Live")
	}
	vf2 := NewValueFile(RFCZeroOne)
	vf2.Produce(0)
	if vf2.Live(0) != 1 || vf2.Live(9) != 0 {
		t.Error("Live counts wrong")
	}
}

func TestReuseBufferDefaults(t *testing.T) {
	rb := NewReuseBuffer(SchemeSv, 0)
	if len(rb.entries) != 64 {
		t.Errorf("default entries = %d", len(rb.entries))
	}
	var nilRB *ReuseBuffer
	nilRB.Update(1, 1, 1, 1, 1, 1) // must not panic
	nilRB.InvalidateReg(1)
	if _, ok := nilRB.Lookup(1, 1, 1, 1, 1); ok {
		t.Error("nil buffer hit")
	}
}
