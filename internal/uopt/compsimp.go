// Package uopt implements the microarchitectural optimization components
// studied by the paper as self-contained, pipeline-independent pieces of
// logic: computation simplification, pipeline (operand) compression,
// computation reuse, value prediction, and register-file compression
// value tracking. The out-of-order core (package pipeline) wires these
// into its stages; silent stores and the data memory-dependent prefetcher
// live in the pipeline and package dmp respectively because they are
// inseparable from the store queue and cache hierarchy.
//
// Every component here is deterministic and observable: each exposes the
// counters an attacker-visible timing difference would stem from.
package uopt

import "math/bits"

// Simplifier implements computation simplification (Section IV-B1):
// instructions whose operand values satisfy certain conditions execute in
// fewer cycles (or are eliminated). The three modeled techniques:
//
//   - ZeroSkipMul: a multiply with a zero operand skips the multiplier
//     array (Figure 2, Example 2).
//   - TrivialALU: trivial identities (x+0, x*1, x&0, x|~0, x^0, shifts by
//     zero, x-x, ...) bypass the functional unit [Yi & Lilja, ICCD'02].
//   - EarlyExitDiv: digit-serial division retires early when the quotient
//     is narrow — latency grows with the significant-bit gap between
//     dividend and divisor [Coppens et al., S&P'09 observed the attack].
type Simplifier struct {
	ZeroSkipMul  bool
	TrivialALU   bool
	EarlyExitDiv bool

	// StrengthReduction converts multiplies with a power-of-two operand
	// into shifts (and divisions by powers of two likewise) — the
	// continuous-optimization example the paper's Section VI-B singles
	// out as a security issue, because the reduction manifests as a
	// function of a specific operand's value beyond control flow.
	StrengthReduction bool

	// DivBitsPerCycle is the radix of the early-exit divider: how many
	// quotient bits retire per cycle. Zero means 2 (radix-4 divider).
	DivBitsPerCycle int

	// Simplified counts how many dynamic instructions took a fast path.
	Simplified uint64
}

// SimplifiedLatency returns the latency for an ALU-family op with operand
// values a and b, given the op's default latency, and whether a fast path
// applied. The op kinds are communicated through the ALUKind enum so this
// package does not depend on package isa.
func (s *Simplifier) SimplifiedLatency(kind ALUKind, a, b uint64, def int) (int, bool) {
	if s == nil {
		return def, false
	}
	switch kind {
	case KindMul:
		if s.ZeroSkipMul && (a == 0 || b == 0) {
			s.Simplified++
			return 1, true
		}
		if s.TrivialALU && (a == 1 || b == 1) {
			s.Simplified++
			return 1, true
		}
		if s.StrengthReduction && (isPow2(a) || isPow2(b)) {
			s.Simplified++
			return 1, true // a shift
		}
	case KindDiv:
		if s.TrivialALU && (b == 1 || a == 0) {
			s.Simplified++
			return 1, true
		}
		if s.StrengthReduction && isPow2(b) {
			s.Simplified++
			return 1, true // a shift
		}
		if s.EarlyExitDiv {
			lat := s.earlyExitDivLatency(a, b, def)
			if lat < def {
				s.Simplified++
				return lat, true
			}
		}
	case KindSimple:
		if s.TrivialALU && trivialSimple(a, b) {
			s.Simplified++
			return 1, true
		}
	}
	return def, false
}

// earlyExitDivLatency models a digit-serial divider that processes the
// quotient most-significant-digit first and exits once the remaining
// quotient bits are exhausted.
func (s *Simplifier) earlyExitDivLatency(a, b uint64, def int) int {
	bpc := s.DivBitsPerCycle
	if bpc <= 0 {
		bpc = 2
	}
	qbits := bits.Len64(a) - bits.Len64(b)
	if qbits < 0 {
		qbits = 0
	}
	lat := 2 + (qbits+bpc-1)/bpc // setup + digit iterations
	if lat > def {
		return def
	}
	return lat
}

// isPow2 reports whether v is a positive power of two.
func isPow2(v uint64) bool { return v != 0 && v&(v-1) == 0 }

// trivialSimple reports whether a simple ALU operation with these operand
// values is trivially computable. The check is operand-based (either
// operand zero), matching the "early detection and bypassing of trivial
// operations" schemes; it intentionally over-approximates per-op identities
// because the hardware detector keys on operand values, not opcodes.
func trivialSimple(a, b uint64) bool {
	return a == 0 || b == 0
}

// ALUKind classifies operations for the simplifier.
type ALUKind uint8

const (
	// KindSimple covers single-cycle integer ops (add/and/or/xor/shift/...).
	KindSimple ALUKind = iota
	// KindMul covers multiplies.
	KindMul
	// KindDiv covers divides and remainders.
	KindDiv
)

func (k ALUKind) String() string {
	switch k {
	case KindSimple:
		return "simple"
	case KindMul:
		return "mul"
	case KindDiv:
		return "div"
	}
	return "kind?"
}
