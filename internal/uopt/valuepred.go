package uopt

// Predictor is a confidence-thresholded last-value predictor for load
// results (Section IV-C3, Figure 3 Example 7). Nearly all proposed value
// predictors are threshold based: a prediction is only consumed once the
// per-PC confidence counter reaches the threshold; a misprediction squashes
// the pipeline and resets confidence, which is the attacker-visible event.
type Predictor struct {
	// Threshold is the confidence required before predictions are used.
	Threshold int
	// MaxConf saturates the confidence counter.
	MaxConf int

	table map[int64]*predEntry

	Predictions    uint64 // confident predictions issued
	Correct        uint64
	Mispredictions uint64
}

type predEntry struct {
	last uint64
	conf int
}

// NewPredictor returns a predictor with the given confidence threshold
// (minimum 1) and a saturation of threshold+4.
func NewPredictor(threshold int) *Predictor {
	if threshold < 1 {
		threshold = 1
	}
	return &Predictor{
		Threshold: threshold,
		MaxConf:   threshold + 4,
		table:     make(map[int64]*predEntry),
	}
}

// Predict returns the predicted result for the load at pc and whether the
// prediction is confident enough to consume.
func (p *Predictor) Predict(pc int64) (uint64, bool) {
	if p == nil {
		return 0, false
	}
	e := p.table[pc]
	if e == nil || e.conf < p.Threshold {
		return 0, false
	}
	p.Predictions++
	return e.last, true
}

// Resolve updates predictor state with the actual value once the load
// completes. predicted reports whether a confident prediction was issued
// for this dynamic instance; the return value reports whether that
// prediction was wrong (a squash is required).
func (p *Predictor) Resolve(pc int64, actual uint64, predicted bool, predictedVal uint64) (mispredict bool) {
	if p == nil {
		return false
	}
	e := p.table[pc]
	if e == nil {
		e = &predEntry{}
		p.table[pc] = e
	}
	if predicted {
		if predictedVal == actual {
			p.Correct++
		} else {
			p.Mispredictions++
			mispredict = true
		}
	}
	if e.last == actual {
		if e.conf < p.MaxConf {
			e.conf++
		}
	} else {
		e.last = actual
		e.conf = 0
	}
	return mispredict
}

// Confidence returns the current confidence for pc (0 if untracked);
// exported for tests and the leakage analyzer.
func (p *Predictor) Confidence(pc int64) int {
	if e := p.table[pc]; e != nil {
		return e.conf
	}
	return 0
}

// Squash implements ValuePredictor; the last-value predictor keeps no
// speculative in-flight state.
func (p *Predictor) Squash() {}

// Flush clears all predictor state.
func (p *Predictor) Flush() { p.table = make(map[int64]*predEntry) }
