package uopt

// ValuePredictor abstracts the value-prediction schemes the pipeline can
// host. The paper notes proposals "ranging from simple last-value and
// stride predictors to hybrid predictors — nearly all threshold based".
type ValuePredictor interface {
	// Predict returns a confident prediction for the load at pc, if any.
	// Called at dispatch; implementations may track speculative in-flight
	// state.
	Predict(pc int64) (uint64, bool)
	// Resolve updates state with the actual value and reports whether a
	// consumed prediction was wrong. Called at commit, once per dynamic
	// instance, in program order.
	Resolve(pc int64, actual uint64, predicted bool, predictedVal uint64) bool
	// Squash discards speculative in-flight prediction state (called on
	// a pipeline squash).
	Squash()
	// Flush clears predictor state.
	Flush()
}

var (
	_ ValuePredictor = (*Predictor)(nil)
	_ ValuePredictor = (*StridePredictor)(nil)
)

// StridePredictor predicts value[n+1] = value[n] + stride, with the same
// confidence-threshold discipline as the last-value predictor. It covers
// the pointer-increment and induction-variable loads a last-value scheme
// misses.
type StridePredictor struct {
	Threshold int
	MaxConf   int

	table map[int64]*strideEntry

	Predictions    uint64
	Correct        uint64
	Mispredictions uint64
}

type strideEntry struct {
	last   uint64
	stride uint64
	conf   int
	seen   bool
	// pending counts confident predictions issued for instances not yet
	// committed; prediction n-ahead is last + (pending+1)*stride, which
	// is what lets the predictor cover several in-flight loop iterations.
	pending int
}

// NewStridePredictor returns a stride predictor with the given confidence
// threshold (minimum 1).
func NewStridePredictor(threshold int) *StridePredictor {
	if threshold < 1 {
		threshold = 1
	}
	return &StridePredictor{
		Threshold: threshold,
		MaxConf:   threshold + 4,
		table:     make(map[int64]*strideEntry),
	}
}

// Predict implements ValuePredictor.
func (p *StridePredictor) Predict(pc int64) (uint64, bool) {
	e := p.table[pc]
	if e == nil || e.conf < p.Threshold {
		return 0, false
	}
	p.Predictions++
	e.pending++
	return e.last + e.stride*uint64(e.pending), true
}

// Resolve implements ValuePredictor.
func (p *StridePredictor) Resolve(pc int64, actual uint64, predicted bool, predictedVal uint64) bool {
	e := p.table[pc]
	if e == nil {
		e = &strideEntry{}
		p.table[pc] = e
	}
	mispredict := false
	if predicted {
		if e.pending > 0 {
			e.pending--
		}
		if predictedVal == actual {
			p.Correct++
		} else {
			p.Mispredictions++
			mispredict = true
		}
	}
	stride := actual - e.last
	if e.seen && stride == e.stride {
		if e.conf < p.MaxConf {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 0
		e.pending = 0
	}
	e.last = actual
	e.seen = true
	return mispredict
}

// Squash implements ValuePredictor: in-flight speculative predictions are
// gone, so the pending counters reset.
func (p *StridePredictor) Squash() {
	for _, e := range p.table {
		e.pending = 0
	}
}

// Flush implements ValuePredictor.
func (p *StridePredictor) Flush() { p.table = make(map[int64]*strideEntry) }
