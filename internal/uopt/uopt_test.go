package uopt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroSkipMul(t *testing.T) {
	s := &Simplifier{ZeroSkipMul: true}
	if lat, ok := s.SimplifiedLatency(KindMul, 0, 123, 4); lat != 1 || !ok {
		t.Errorf("zero operand: lat=%d ok=%v", lat, ok)
	}
	if lat, ok := s.SimplifiedLatency(KindMul, 123, 0, 4); lat != 1 || !ok {
		t.Errorf("zero operand b: lat=%d ok=%v", lat, ok)
	}
	if lat, ok := s.SimplifiedLatency(KindMul, 3, 5, 4); lat != 4 || ok {
		t.Errorf("non-zero: lat=%d ok=%v", lat, ok)
	}
	if s.Simplified != 2 {
		t.Errorf("Simplified = %d", s.Simplified)
	}
}

func TestTrivialALU(t *testing.T) {
	s := &Simplifier{TrivialALU: true}
	if lat, ok := s.SimplifiedLatency(KindSimple, 0, 77, 1); lat != 1 || !ok {
		t.Errorf("trivial simple: %d %v", lat, ok)
	}
	if lat, ok := s.SimplifiedLatency(KindMul, 1, 77, 4); lat != 1 || !ok {
		t.Errorf("mul by one: %d %v", lat, ok)
	}
	if lat, ok := s.SimplifiedLatency(KindDiv, 77, 1, 20); lat != 1 || !ok {
		t.Errorf("div by one: %d %v", lat, ok)
	}
}

func TestEarlyExitDivLatencyMonotonic(t *testing.T) {
	s := &Simplifier{EarlyExitDiv: true}
	// Wider dividends (relative to divisor) must not be faster.
	prev := 0
	for bitsLen := 1; bitsLen < 64; bitsLen++ {
		a := uint64(1)<<uint(bitsLen) - 1
		lat, _ := s.SimplifiedLatency(KindDiv, a, 3, 40)
		if lat < prev {
			t.Fatalf("latency decreased at %d bits: %d < %d", bitsLen, lat, prev)
		}
		prev = lat
	}
	// Equal-width operands exit almost immediately.
	lat, ok := s.SimplifiedLatency(KindDiv, 7, 5, 40)
	if !ok || lat > 3 {
		t.Errorf("narrow quotient latency = %d (ok=%v)", lat, ok)
	}
	// Latency never exceeds the default.
	f := func(a, b uint64) bool {
		lat, _ := s.SimplifiedLatency(KindDiv, a, b|1, 40)
		return lat >= 1 && lat <= 40
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

func TestNilSimplifierPassthrough(t *testing.T) {
	var s *Simplifier
	if lat, ok := s.SimplifiedLatency(KindMul, 0, 0, 4); lat != 4 || ok {
		t.Errorf("nil simplifier: %d %v", lat, ok)
	}
}

func TestPackerThreshold(t *testing.T) {
	p := NewPacker()
	if !p.CanPack(100, 200, 0xffff, 1) {
		t.Error("all-narrow operands should pack (msb <= 16)")
	}
	if p.CanPack(100, 200, 0x10000, 1) {
		t.Error("wide operand must not pack")
	}
	var nilP *Packer
	if nilP.CanPack(1, 1, 1, 1) {
		t.Error("nil packer packs")
	}
}

func TestPackerLeaksOperandSignificance(t *testing.T) {
	// The MLD of Figure 3 Ex. 4: with attacker operands narrow, packing
	// reveals exactly whether the victim operands are narrow.
	p := NewPacker()
	victimSecrets := []uint64{3, 1 << 20}
	got := []bool{}
	for _, s := range victimSecrets {
		got = append(got, p.CanPack(s, 5 /*victim*/, 7, 9 /*attacker: narrow*/))
	}
	if got[0] == got[1] {
		t.Error("packing outcome must distinguish narrow vs wide victim operand")
	}
}

func TestReuseSv(t *testing.T) {
	rb := NewReuseBuffer(SchemeSv, 8)
	if _, ok := rb.Lookup(10, 1, 2, 3, 4); ok {
		t.Error("hit on empty buffer")
	}
	rb.Update(10, 1, 2, 3, 4, 99)
	if v, ok := rb.Lookup(10, 1, 2, 3, 4); !ok || v != 99 {
		t.Errorf("miss after update: %d %v", v, ok)
	}
	// Different operand values: miss (that is the leak — a hit reveals
	// value equality).
	if _, ok := rb.Lookup(10, 1, 3, 3, 4); ok {
		t.Error("Sv hit despite different operand values")
	}
	// Different PC mapping to same slot: must not false-hit.
	if _, ok := rb.Lookup(18, 1, 2, 3, 4); ok {
		t.Error("hit for different PC in same slot")
	}
}

func TestReuseSn(t *testing.T) {
	rb := NewReuseBuffer(SchemeSn, 8)
	rb.Update(10, 1, 2, 3, 4, 99)
	// Sn keys on register names: different values, same registers → hit.
	if v, ok := rb.Lookup(10, 7, 8, 3, 4); !ok || v != 99 {
		t.Errorf("Sn should hit on same register names: %d %v", v, ok)
	}
	// Overwriting a source register invalidates.
	rb.InvalidateReg(4)
	if _, ok := rb.Lookup(10, 1, 2, 3, 4); ok {
		t.Error("Sn hit after source register invalidation")
	}
}

func TestReuseSvIgnoresInvalidation(t *testing.T) {
	rb := NewReuseBuffer(SchemeSv, 8)
	rb.Update(10, 1, 2, 3, 4, 99)
	rb.InvalidateReg(3)
	if _, ok := rb.Lookup(10, 1, 2, 3, 4); !ok {
		t.Error("Sv entries are value-keyed; register overwrite must not invalidate")
	}
}

func TestReuseFlushAndStats(t *testing.T) {
	rb := NewReuseBuffer(SchemeSv, 8)
	rb.Update(1, 1, 1, 1, 1, 5)
	rb.Lookup(1, 1, 1, 1, 1)
	rb.Lookup(1, 2, 2, 1, 1)
	if rb.Hits != 1 || rb.Misses != 1 {
		t.Errorf("stats: hits=%d misses=%d", rb.Hits, rb.Misses)
	}
	rb.Flush()
	if _, ok := rb.Lookup(1, 1, 1, 1, 1); ok {
		t.Error("hit after flush")
	}
}

func TestPredictorConfidenceGating(t *testing.T) {
	p := NewPredictor(2)
	if _, ok := p.Predict(5); ok {
		t.Error("prediction from empty table")
	}
	// Two identical resolutions reach threshold 2.
	p.Resolve(5, 42, false, 0)
	if _, ok := p.Predict(5); ok {
		t.Error("prediction after a single observation (conf 0)")
	}
	p.Resolve(5, 42, false, 0) // conf 1
	p.Resolve(5, 42, false, 0) // conf 2
	v, ok := p.Predict(5)
	if !ok || v != 42 {
		t.Errorf("confident prediction = %d, %v", v, ok)
	}
}

func TestPredictorMispredictResets(t *testing.T) {
	p := NewPredictor(1)
	p.Resolve(5, 42, false, 0)
	p.Resolve(5, 42, false, 0)
	v, ok := p.Predict(5)
	if !ok {
		t.Fatal("expected confident prediction")
	}
	if mis := p.Resolve(5, 43, true, v); !mis {
		t.Error("wrong prediction must report mispredict")
	}
	if _, ok := p.Predict(5); ok {
		t.Error("confidence must reset after value change")
	}
	if p.Mispredictions != 1 {
		t.Errorf("Mispredictions = %d", p.Mispredictions)
	}
}

func TestPredictorConfidenceSaturates(t *testing.T) {
	p := NewPredictor(2)
	for i := 0; i < 100; i++ {
		p.Resolve(9, 7, false, 0)
	}
	if got := p.Confidence(9); got != p.MaxConf {
		t.Errorf("confidence = %d, want saturation at %d", got, p.MaxConf)
	}
}

func TestValueFileSharing(t *testing.T) {
	vf := NewValueFile(RFCAnyValue)
	if vf.Produce(5) {
		t.Error("first producer of a value must not share")
	}
	if !vf.Produce(5) {
		t.Error("second producer of same value must share")
	}
	if vf.Live(5) != 2 {
		t.Errorf("Live(5) = %d", vf.Live(5))
	}
	if vf.Release(5) {
		t.Error("release with remaining sharers reported freed")
	}
	if !vf.Release(5) {
		t.Error("last release must report freed")
	}
	if vf.Live(5) != 0 {
		t.Errorf("Live after releases = %d", vf.Live(5))
	}
}

func TestValueFileZeroOneMode(t *testing.T) {
	vf := NewValueFile(RFCZeroOne)
	vf.Produce(0)
	if !vf.Produce(0) {
		t.Error("duplicate 0 must share in 0/1 mode")
	}
	vf.Produce(7)
	if vf.Produce(7) {
		t.Error("value 7 must not share in 0/1 mode")
	}
}

func TestValueFileOffMode(t *testing.T) {
	vf := NewValueFile(RFCOff)
	if vf.Produce(5) {
		t.Error("off mode never shares")
	}
	if !vf.Release(5) {
		t.Error("off mode always frees")
	}
}

// TestValueFileConservation property-checks that produce/release pairs
// balance: after releasing everything produced, nothing is live.
func TestValueFileConservation(t *testing.T) {
	f := func(vals []uint8) bool {
		vf := NewValueFile(RFCAnyValue)
		for _, v := range vals {
			vf.Produce(uint64(v % 4))
		}
		for _, v := range vals {
			vf.Release(uint64(v % 4))
		}
		for i := uint64(0); i < 4; i++ {
			if vf.Live(i) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}
