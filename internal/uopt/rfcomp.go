package uopt

// RFCMode selects which values the register-file compressor can share
// (Section IV-D1, Figure 3 Example 8).
type RFCMode uint8

const (
	// RFCOff disables compression.
	RFCOff RFCMode = iota
	// RFCZeroOne shares only the common values 0 and 1 [Balakrishnan &
	// Sohi, MICRO'03 0/1 variant].
	RFCZeroOne
	// RFCAnyValue shares any duplicated value [physical register reuse,
	// Jourdan et al. MICRO'98].
	RFCAnyValue
)

func (m RFCMode) String() string {
	switch m {
	case RFCZeroOne:
		return "rfc-0/1"
	case RFCAnyValue:
		return "rfc-any"
	}
	return "rfc-off"
}

// ValueFile tracks which result values are currently live in the physical
// register file so the renamer can detect sharing opportunities: when an
// instruction produces a value already present, its freshly allocated
// physical register is returned to the free pool immediately, relieving
// rename pressure. The timing consequence — fewer rename stalls — is a
// function of register *values at rest*, which is what makes the
// optimization leak (Table I: register file transitions S→U under RFC).
type ValueFile struct {
	Mode RFCMode
	refs map[uint64]int

	Shared uint64 // results that shared an existing register
	Unique uint64 // results that kept their own register
}

// NewValueFile returns an empty tracker.
func NewValueFile(mode RFCMode) *ValueFile {
	return &ValueFile{Mode: mode, refs: make(map[uint64]int)}
}

func (vf *ValueFile) shareable(v uint64) bool {
	switch vf.Mode {
	case RFCZeroOne:
		return v <= 1
	case RFCAnyValue:
		return true
	}
	return false
}

// Produce records a new live result value and reports whether it can share
// an already-present register (true means the allocated physical register
// may be released back to the free pool right away).
func (vf *ValueFile) Produce(v uint64) (shared bool) {
	if vf == nil || vf.Mode == RFCOff {
		return false
	}
	if vf.shareable(v) && vf.refs[v] > 0 {
		vf.refs[v]++
		vf.Shared++
		return true
	}
	vf.refs[v]++
	vf.Unique++
	return false
}

// Release records that a live value was overwritten/freed and reports
// whether its physical register actually returns to the pool (false when
// other references still share it).
func (vf *ValueFile) Release(v uint64) (freed bool) {
	if vf == nil || vf.Mode == RFCOff {
		return true
	}
	n := vf.refs[v]
	if n <= 1 {
		delete(vf.refs, v)
		return true
	}
	vf.refs[v] = n - 1
	return false
}

// Live returns the number of registers holding value v.
func (vf *ValueFile) Live(v uint64) int {
	if vf == nil {
		return 0
	}
	return vf.refs[v]
}
