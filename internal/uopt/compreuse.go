package uopt

// ReuseScheme selects how the computation-reuse buffer is keyed, following
// the variants of Sodani & Sohi's dynamic instruction reuse [ISCA'97]
// (Sections IV-C2 and VI-A3 of the paper):
//
//   - SchemeSv keys entries by PC and *operand values*. Highest reuse rate,
//     but a reuse hit reveals that the current operand values equal the
//     memoized ones — the security problem the paper analyzes.
//   - SchemeSn keys entries by PC and operand *register names*; an entry is
//     invalidated whenever one of its source registers is overwritten. A
//     hit reveals only which static instruction is executing (control
//     flow), which constant-time code already treats as public.
type ReuseScheme uint8

const (
	// SchemeSv is value-keyed reuse.
	SchemeSv ReuseScheme = iota
	// SchemeSn is name-keyed reuse.
	SchemeSn
)

func (s ReuseScheme) String() string {
	if s == SchemeSn {
		return "Sn"
	}
	return "Sv"
}

type reuseEntry struct {
	valid  bool
	pc     int64
	a, b   uint64 // operand values (Sv)
	ra, rb uint8  // operand register names (Sn)
	result uint64
}

// ReuseBuffer is a direct-mapped hardware memoization table (Figure 3,
// Example 6). Lookups on a hit skip the functional unit entirely; this is
// non-speculative because a hit guarantees the memoized result is correct
// for the keying discipline in use.
type ReuseBuffer struct {
	Scheme  ReuseScheme
	entries []reuseEntry

	Hits    uint64
	Misses  uint64
	Updates uint64
}

// NewReuseBuffer returns a buffer with the given number of entries
// (direct-mapped on PC).
func NewReuseBuffer(scheme ReuseScheme, entries int) *ReuseBuffer {
	if entries <= 0 {
		entries = 64
	}
	return &ReuseBuffer{Scheme: scheme, entries: make([]reuseEntry, entries)}
}

func (rb *ReuseBuffer) slot(pc int64) *reuseEntry {
	return &rb.entries[uint64(pc)%uint64(len(rb.entries))]
}

// Lookup consults the buffer for the dynamic instruction at pc with
// operand values a,b read from registers ra,rb. On a hit the memoized
// result is returned and the functional unit can be skipped.
func (rb *ReuseBuffer) Lookup(pc int64, a, b uint64, ra, rb2 uint8) (uint64, bool) {
	if rb == nil {
		return 0, false
	}
	e := rb.slot(pc)
	if !e.valid || e.pc != pc {
		rb.Misses++
		return 0, false
	}
	switch rb.Scheme {
	case SchemeSv:
		if e.a == a && e.b == b {
			rb.Hits++
			return e.result, true
		}
	case SchemeSn:
		if e.ra == ra && e.rb == rb2 {
			rb.Hits++
			return e.result, true
		}
	}
	rb.Misses++
	return 0, false
}

// Update memoizes the result of the instruction at pc.
func (rb *ReuseBuffer) Update(pc int64, a, b uint64, ra, rb2 uint8, result uint64) {
	if rb == nil {
		return
	}
	rb.Updates++
	*rb.slot(pc) = reuseEntry{valid: true, pc: pc, a: a, b: b, ra: ra, rb: rb2, result: result}
}

// InvalidateReg drops every Sn entry sourced from register r; called when
// r is overwritten. Sv entries are value-keyed and unaffected.
func (rb *ReuseBuffer) InvalidateReg(r uint8) {
	if rb == nil || rb.Scheme != SchemeSn {
		return
	}
	for i := range rb.entries {
		e := &rb.entries[i]
		if e.valid && (e.ra == r || e.rb == r) {
			e.valid = false
		}
	}
}

// Flush invalidates the whole buffer.
func (rb *ReuseBuffer) Flush() {
	for i := range rb.entries {
		rb.entries[i].valid = false
	}
}
