package uopt

import "math/bits"

// Packer implements pipeline compression in the form of arithmetic-unit
// operand packing [Brooks & Martonosi, HPCA'99] (Section IV-B2, Figure 3
// Example 4): two pending single-cycle integer operations whose operands
// are all narrow (msb below NarrowBits) can share one execution port in
// the same cycle. The observable outcome is a throughput difference that
// depends on the operand *values* of in-flight instructions — including a
// victim's, when an SMT sibling supplies the second instruction.
type Packer struct {
	// NarrowBits is the significance threshold; operands whose
	// most-significant set bit index is below it are packable. The paper's
	// example uses 16.
	NarrowBits int

	// Packed counts instruction pairs that issued packed.
	Packed uint64
}

// NewPacker returns a Packer with the paper's 16-bit threshold.
func NewPacker() *Packer { return &Packer{NarrowBits: 16} }

// Narrow reports whether a single operand value is narrow.
func (p *Packer) Narrow(v uint64) bool {
	nb := p.NarrowBits
	if nb <= 0 {
		nb = 16
	}
	return bits.Len64(v) <= nb
}

// CanPack reports whether two instructions with the given operand values
// may share one ALU port. This is the MLD of Figure 3, Example 4: the
// outcome is a single bit, a conjunction over the four operands'
// significance.
func (p *Packer) CanPack(a0, a1, b0, b1 uint64) bool {
	if p == nil {
		return false
	}
	return p.Narrow(a0) && p.Narrow(a1) && p.Narrow(b0) && p.Narrow(b1)
}

// NotePacked records a successful packing.
func (p *Packer) NotePacked() { p.Packed++ }
