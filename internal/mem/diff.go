package mem

import "sort"

// Mismatch is one byte address at which two memories disagree.
type Mismatch struct {
	Addr uint64
	A, B byte
}

// Diff compares two memories byte-wise over the union of their allocated
// pages, returning up to max mismatches in ascending address order (max <= 0
// means no limit). Never-written bytes read as zero, so a page allocated in
// one memory but not the other only counts where its contents are nonzero —
// sparse-allocation differences alone are not architectural differences.
func Diff(a, b *Memory, max int) []Mismatch {
	pns := make(map[uint64]struct{}, len(a.pages)+len(b.pages))
	for pn := range a.pages {
		pns[pn] = struct{}{}
	}
	for pn := range b.pages {
		pns[pn] = struct{}{}
	}
	order := make([]uint64, 0, len(pns))
	for pn := range pns {
		order = append(order, pn)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	var out []Mismatch
	for _, pn := range order {
		pa, pb := a.pages[pn], b.pages[pn]
		if pa == pb {
			continue // copy-on-write aliases: identical by construction
		}
		for i := 0; i < pageSize; i++ {
			var va, vb byte
			if pa != nil {
				va = pa[i]
			}
			if pb != nil {
				vb = pb[i]
			}
			if va != vb {
				out = append(out, Mismatch{Addr: pn<<pageShift | uint64(i), A: va, B: vb})
				if max > 0 && len(out) >= max {
					return out
				}
			}
		}
	}
	return out
}
