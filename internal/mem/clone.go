package mem

// Clone returns a copy-on-write snapshot of m. The clone and m share page
// storage until either side writes a shared page, at which point that page
// is copied. The out-of-order pipeline uses this to run its control-flow
// oracle ahead of timing simulation: the oracle executes stores eagerly on
// its clone while the timing model performs them on the original at
// store-queue dequeue time.
func (m *Memory) Clone() *Memory {
	if m.pages == nil {
		m.pages = make(map[uint64]*[pageSize]byte)
	}
	if m.shared == nil {
		m.shared = make(map[uint64]bool)
	}
	c := &Memory{
		pages:   make(map[uint64]*[pageSize]byte, len(m.pages)),
		shared:  make(map[uint64]bool, len(m.pages)),
		regions: append([]Region(nil), m.regions...),
	}
	for pn, p := range m.pages {
		c.pages[pn] = p
		m.shared[pn] = true
		c.shared[pn] = true
	}
	return c
}
