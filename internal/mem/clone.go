package mem

// Clone returns a copy-on-write snapshot of m. The clone and m share page
// storage until either side writes a shared page, at which point that page
// is copied. The out-of-order pipeline uses this to run its control-flow
// oracle ahead of timing simulation: the oracle executes stores eagerly on
// its clone while the timing model performs them on the original at
// store-queue dequeue time.
func (m *Memory) Clone() *Memory {
	return m.CloneInto(&Memory{})
}

// CloneInto makes c a copy-on-write snapshot of m, reusing c's existing
// map and slice storage. It is the allocation-free path for callers that
// re-clone the same memory once per simulated run (the pipeline oracle)
// or restore a canonical image between sweep attempts (attack scenario
// pools): only the first clone allocates; steady-state re-clones just
// rewrite the page table. Returns c.
//
// Pages c already owns privately (its own earlier copy-on-write copies —
// by construction referenced by nobody else) are refreshed in place with
// m's current bytes instead of being re-shared. A page both sides write
// every run therefore settles into one private copy per side after the
// first run, and neither side's writes ever trigger another
// copy-on-write allocation — re-sharing such a page would force both
// memories to re-copy it every single run.
func (m *Memory) CloneInto(c *Memory) *Memory {
	if m.pages == nil {
		m.pages = make(map[uint64]*[pageSize]byte)
	}
	if m.shared == nil {
		m.shared = make(map[uint64]bool)
	}
	if c.pages == nil {
		c.pages = make(map[uint64]*[pageSize]byte, len(m.pages))
	}
	if c.shared == nil {
		c.shared = make(map[uint64]bool, len(m.pages))
	}
	c.regions = append(c.regions[:0], m.regions...)
	for pn, cp := range c.pages {
		mp, ok := m.pages[pn]
		if !ok {
			// c created this page itself and m has no counterpart; the
			// snapshot must not contain it.
			delete(c.pages, pn)
			delete(c.shared, pn)
			continue
		}
		if !c.shared[pn] && cp != mp {
			*cp = *mp // refresh c's private copy in place
		}
	}
	for pn, p := range m.pages {
		if cp, ok := c.pages[pn]; ok && !c.shared[pn] && cp != p {
			continue // refreshed in place above; stays private
		}
		c.pages[pn] = p
		m.shared[pn] = true
		c.shared[pn] = true
	}
	return c
}

// Snapshot returns a copy-on-write image of m's current contents, for
// later Restore. The snapshot must not be written through.
func (m *Memory) Snapshot() *Memory { return m.Clone() }

// Restore rewinds m to the contents captured by snap (a Snapshot of m or
// of an equivalent memory), in place: existing pointers to m stay valid,
// which is what lets a pooled attack scenario reset its machine-visible
// memory to a canonical image between sweep attempts without rebuilding
// the machine or cache wiring around it.
func (m *Memory) Restore(snap *Memory) { snap.CloneInto(m) }
