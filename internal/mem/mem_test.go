package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReadWriteWidths(t *testing.T) {
	m := New()
	m.Write(0x1000, 8, 0x1122334455667788)
	if got := m.Read(0x1000, 8); got != 0x1122334455667788 {
		t.Errorf("Read8 = %#x", got)
	}
	if got := m.Read(0x1000, 4); got != 0x55667788 {
		t.Errorf("Read4 = %#x", got)
	}
	if got := m.Read(0x1004, 4); got != 0x11223344 {
		t.Errorf("Read4 hi = %#x", got)
	}
	if got := m.Read(0x1000, 2); got != 0x7788 {
		t.Errorf("Read2 = %#x", got)
	}
	if got := m.Read(0x1007, 1); got != 0x11 {
		t.Errorf("Read1 = %#x", got)
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	m := New()
	if got := m.Read(0xdeadbeef, 8); got != 0 {
		t.Errorf("unwritten read = %#x, want 0", got)
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := New()
	addr := uint64(pageSize - 4)
	m.Write(addr, 8, 0xaabbccdd11223344)
	if got := m.Read(addr, 8); got != 0xaabbccdd11223344 {
		t.Errorf("cross-page read = %#x", got)
	}
}

func TestLoadStoreBytes(t *testing.T) {
	m := New()
	m.StoreBytes(0x2000, []byte{1, 2, 3, 4, 5})
	got := m.LoadBytes(0x2000, 5)
	for i, b := range []byte{1, 2, 3, 4, 5} {
		if got[i] != b {
			t.Errorf("byte %d = %d, want %d", i, got[i], b)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	m := New()
	f := func(addr uint64, v uint64, wsel uint8) bool {
		w := []int{1, 2, 4, 8}[wsel%4]
		m.Write(addr, w, v)
		mask := ^uint64(0)
		if w < 8 {
			mask = 1<<(8*w) - 1
		}
		return m.Read(addr, w) == v&mask
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSignExtend(t *testing.T) {
	cases := []struct {
		v    uint64
		w    int
		want int64
	}{
		{0x80, 1, -128},
		{0x7f, 1, 127},
		{0x8000, 2, -32768},
		{0xffff, 2, -1},
		{0x80000000, 4, -2147483648},
		{0x7fffffff, 4, 2147483647},
		{0xffffffffffffffff, 8, -1},
	}
	for _, c := range cases {
		if got := int64(SignExtend(c.v, c.w)); got != c.want {
			t.Errorf("SignExtend(%#x, %d) = %d, want %d", c.v, c.w, got, c.want)
		}
	}
}

func TestRegions(t *testing.T) {
	m := New()
	if err := m.AddRegion(Region{Name: "sandbox", Base: 0x1000, Size: 0x1000}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddRegion(Region{Name: "kernel", Base: 0x100000, Size: 0x1000, Protected: true}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddRegion(Region{Name: "overlap", Base: 0x1800, Size: 16}); err == nil {
		t.Error("expected overlap error")
	}
	if err := m.AddRegion(Region{Name: "empty", Base: 0, Size: 0}); err == nil {
		t.Error("expected zero-size error")
	}
	if err := m.AddRegion(Region{Name: "wrap", Base: ^uint64(0) - 1, Size: 16}); err == nil {
		t.Error("expected wrap error")
	}
	r, ok := m.RegionOf(0x1fff)
	if !ok || r.Name != "sandbox" {
		t.Errorf("RegionOf(0x1fff) = %+v, %v", r, ok)
	}
	if _, ok := m.RegionOf(0x2000); ok {
		t.Error("RegionOf(0x2000) should miss (exclusive end)")
	}
	k, ok := m.RegionByName("kernel")
	if !ok || !k.Protected {
		t.Errorf("kernel region: %+v, %v", k, ok)
	}
	if got := len(m.Regions()); got != 2 {
		t.Errorf("Regions() len = %d", got)
	}
}

func TestCloneCopyOnWrite(t *testing.T) {
	m := New()
	m.Write(0x100, 8, 111)
	c := m.Clone()

	// Clone sees original data.
	if got := c.Read(0x100, 8); got != 111 {
		t.Fatalf("clone read = %d", got)
	}
	// Writes to clone do not affect original.
	c.Write(0x100, 8, 222)
	if got := m.Read(0x100, 8); got != 111 {
		t.Errorf("original after clone write = %d, want 111", got)
	}
	// Writes to original do not affect clone.
	m.Write(0x100, 8, 333)
	if got := c.Read(0x100, 8); got != 222 {
		t.Errorf("clone after original write = %d, want 222", got)
	}
	// Fresh pages are independent too.
	c.Write(0x5000, 8, 1)
	if got := m.Read(0x5000, 8); got != 0 {
		t.Errorf("original sees clone's new page: %d", got)
	}
}

func TestCloneOracleOrdering(t *testing.T) {
	// The pipeline usage pattern: oracle (clone) writes a page first, then
	// the original writes the same page later; neither sees the other.
	m := New()
	m.Write(0x300, 8, 1)
	oracle := m.Clone()
	oracle.Write(0x300, 8, 2) // oracle runs ahead
	m.Write(0x300, 8, 2)      // timing model catches up
	if oracle.Read(0x300, 8) != 2 || m.Read(0x300, 8) != 2 {
		t.Error("divergence in oracle ordering pattern")
	}
	oracle.Write(0x308, 8, 9)
	if m.Read(0x308, 8) != 0 {
		t.Error("oracle write leaked to original")
	}
}

func TestInvalidWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for width 3")
		}
	}()
	New().Read(0, 3)
}

func TestZeroValueMemoryUsable(t *testing.T) {
	var m Memory
	m.Write(0x10, 4, 42)
	if got := m.Read(0x10, 4); got != 42 {
		t.Errorf("zero-value memory read = %d", got)
	}
}

func TestCloneIntoReuse(t *testing.T) {
	m := New()
	m.Write(0x100, 8, 7)
	m.Write(0x2000, 8, 9)

	c := &Memory{}
	m.CloneInto(c)
	if c.Read(0x100, 8) != 7 || c.Read(0x2000, 8) != 9 {
		t.Fatal("clone missing original contents")
	}

	// Diverge, then re-clone into the same image: divergence must vanish.
	c.Write(0x100, 8, 99)
	c.Write(0x9000, 8, 1) // page the original never had
	m.CloneInto(c)
	if got := c.Read(0x100, 8); got != 7 {
		t.Errorf("re-clone kept stale write: %d", got)
	}
	if got := c.Read(0x9000, 8); got != 0 {
		t.Errorf("re-clone kept stale page: %d", got)
	}

	// COW still holds after reuse.
	c.Write(0x100, 8, 123)
	if got := m.Read(0x100, 8); got != 7 {
		t.Errorf("reused clone write leaked to original: %d", got)
	}
}

func TestSnapshotRestore(t *testing.T) {
	m := New()
	if err := m.AddRegion(Region{Name: "r", Base: 0x1000, Size: 64}); err != nil {
		t.Fatal(err)
	}
	m.Write(0x1000, 8, 42)
	snap := m.Snapshot()

	m.Write(0x1000, 8, 77) // mutate a snapshotted page
	m.Write(0x40000, 8, 5) // grow a new page
	m.Restore(snap)

	if got := m.Read(0x1000, 8); got != 42 {
		t.Errorf("restore: read %d, want 42", got)
	}
	if got := m.Read(0x40000, 8); got != 0 {
		t.Errorf("restore kept post-snapshot page: %d", got)
	}
	if _, ok := m.RegionByName("r"); !ok {
		t.Error("restore dropped region")
	}

	// The cycle must be repeatable: mutate and restore again.
	m.Write(0x1000, 8, 1)
	m.Restore(snap)
	if got := m.Read(0x1000, 8); got != 42 {
		t.Errorf("second restore: read %d, want 42", got)
	}
	// And the snapshot itself must have stayed pristine throughout.
	if got := snap.Read(0x1000, 8); got != 42 {
		t.Errorf("snapshot mutated: %d", got)
	}
}
