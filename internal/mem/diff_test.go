package mem

import "testing"

func TestDiff(t *testing.T) {
	a, b := New(), New()
	a.Write(0x100, 8, 0xdeadbeef)
	b.Write(0x100, 8, 0xdeadbeee) // low byte differs
	b.StoreByte(0x5000, 7)        // page present only in b

	d := Diff(a, b, 0)
	if len(d) != 2 {
		t.Fatalf("Diff = %v, want 2 mismatches", d)
	}
	if d[0].Addr != 0x100 || d[0].A != 0xef || d[0].B != 0xee {
		t.Errorf("first mismatch = %+v", d[0])
	}
	if d[1].Addr != 0x5000 || d[1].A != 0 || d[1].B != 7 {
		t.Errorf("second mismatch = %+v", d[1])
	}
	// Symmetric in content, swapped in byte labels.
	rd := Diff(b, a, 0)
	if len(rd) != 2 || rd[0].A != 0xee || rd[0].B != 0xef {
		t.Errorf("reverse diff = %v", rd)
	}
}

func TestDiffMaxCap(t *testing.T) {
	a, b := New(), New()
	for i := uint64(0); i < 10; i++ {
		b.StoreByte(i, byte(i+1))
	}
	if d := Diff(a, b, 3); len(d) != 3 {
		t.Errorf("capped diff = %v, want 3", d)
	}
}

func TestDiffIdenticalAndCoWAliases(t *testing.T) {
	a := New()
	a.Write(0x200, 8, 0x1122334455667788)
	if d := Diff(a, a, 0); len(d) != 0 {
		t.Errorf("self diff = %v", d)
	}
	// A clone shares pages copy-on-write; Diff must treat shared pages as
	// equal without touching them, and spot post-clone divergence.
	c := a.Clone()
	if d := Diff(a, c, 0); len(d) != 0 {
		t.Errorf("clone diff = %v", d)
	}
	c.StoreByte(0x200, 0x99)
	d := Diff(a, c, 0)
	if len(d) != 1 || d[0].Addr != 0x200 || d[0].A != 0x88 || d[0].B != 0x99 {
		t.Errorf("post-clone diff = %v", d)
	}
}
