// Package mem implements the flat physical data memory backing the
// simulated machine. Memory is sparse (page-granular allocation) so
// experiments can place a "sandbox" region at low addresses and "protected
// kernel" data far away without allocating the gap.
//
// Addresses are 64-bit byte addresses; accesses are little-endian and may
// be 1, 2, 4 or 8 bytes wide. Memory is purely architectural state — all
// timing lives in the cache and pipeline models.
package mem

import "fmt"

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// Memory is a sparse byte-addressable physical memory.
//
// The zero value is an empty memory ready for use.
type Memory struct {
	pages map[uint64]*[pageSize]byte

	// shared marks pages referenced by a copy-on-write Clone; writing a
	// shared page copies it first.
	shared map[uint64]bool

	// regions records named address ranges for bookkeeping (sandbox,
	// protected space, victim stack, ...). Regions do not affect access
	// semantics; the mini-eBPF verifier enforces bounds in software, and
	// hardware (the prefetcher) deliberately ignores them — that is the
	// attack.
	regions []Region
}

// Region is a named address range [Base, Base+Size).
type Region struct {
	Name      string
	Base      uint64
	Size      uint64
	Protected bool // true for addresses the sandboxed attacker must never architecturally read
}

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint64) bool {
	return addr >= r.Base && addr-r.Base < r.Size
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

// AddRegion registers a named range. It returns an error if the region
// overlaps an existing one, so experiment setups fail loudly when
// mis-sized.
func (m *Memory) AddRegion(r Region) error {
	if r.Size == 0 {
		return fmt.Errorf("mem: region %q has zero size", r.Name)
	}
	if r.Base+r.Size < r.Base {
		return fmt.Errorf("mem: region %q wraps the address space", r.Name)
	}
	for _, ex := range m.regions {
		if r.Base < ex.Base+ex.Size && ex.Base < r.Base+r.Size {
			return fmt.Errorf("mem: region %q overlaps %q", r.Name, ex.Name)
		}
	}
	m.regions = append(m.regions, r)
	return nil
}

// RegionByName returns the named region.
func (m *Memory) RegionByName(name string) (Region, bool) {
	for _, r := range m.regions {
		if r.Name == name {
			return r, true
		}
	}
	return Region{}, false
}

// RegionOf returns the region containing addr, if any.
func (m *Memory) RegionOf(addr uint64) (Region, bool) {
	for _, r := range m.regions {
		if r.Contains(addr) {
			return r, true
		}
	}
	return Region{}, false
}

// Regions returns a copy of the registered regions.
func (m *Memory) Regions() []Region {
	out := make([]Region, len(m.regions))
	copy(out, m.regions)
	return out
}

func (m *Memory) page(addr uint64, create bool) *[pageSize]byte {
	if m.pages == nil {
		m.pages = make(map[uint64]*[pageSize]byte)
	}
	pn := addr >> pageShift
	p := m.pages[pn]
	if p == nil && create {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	if p != nil && create && m.shared[pn] {
		cp := *p
		p = &cp
		m.pages[pn] = p
		delete(m.shared, pn)
	}
	return p
}

// LoadByte returns the byte at addr (0 if never written).
func (m *Memory) LoadByte(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// StoreByte stores b at addr.
func (m *Memory) StoreByte(addr uint64, b byte) {
	m.page(addr, true)[addr&pageMask] = b
}

// Read returns the little-endian value of the width-byte word at addr.
// Width must be 1, 2, 4 or 8. Unaligned accesses are permitted (the toy
// machine has no alignment traps).
func (m *Memory) Read(addr uint64, width int) uint64 {
	checkWidth(width)
	// Fast path: the access lies within one page — a single map lookup
	// instead of one per byte.
	if off := addr & pageMask; off+uint64(width) <= pageSize {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		var v uint64
		for i := 0; i < width; i++ {
			v |= uint64(p[off+uint64(i)]) << (8 * i)
		}
		return v
	}
	var v uint64
	for i := 0; i < width; i++ {
		v |= uint64(m.LoadByte(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Write stores the low width bytes of v at addr, little-endian.
func (m *Memory) Write(addr uint64, width int, v uint64) {
	checkWidth(width)
	if off := addr & pageMask; off+uint64(width) <= pageSize {
		p := m.page(addr, true)
		for i := 0; i < width; i++ {
			p[off+uint64(i)] = byte(v >> (8 * i))
		}
		return
	}
	for i := 0; i < width; i++ {
		m.StoreByte(addr+uint64(i), byte(v>>(8*i)))
	}
}

// LoadBytes copies n bytes starting at addr into a new slice.
func (m *Memory) LoadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.LoadByte(addr + uint64(i))
	}
	return out
}

// StoreBytes stores b starting at addr.
func (m *Memory) StoreBytes(addr uint64, b []byte) {
	for i, x := range b {
		m.StoreByte(addr+uint64(i), x)
	}
}

func checkWidth(w int) {
	switch w {
	case 1, 2, 4, 8:
	default:
		panic(fmt.Sprintf("mem: invalid access width %d", w))
	}
}

// SignExtend sign-extends the low width bytes of v to 64 bits.
func SignExtend(v uint64, width int) uint64 {
	checkWidth(width)
	shift := 64 - 8*width
	return uint64(int64(v<<shift) >> shift)
}
