#!/bin/sh
# CI gate: vet, build, and run the full test suite under the race
# detector. -short keeps the paper-scale sweeps (keyrec -full, large
# fig6 sample counts) out of CI; they are exercised manually via
# `pandora <experiment> -full` or the single-shot benchmarks.
set -eux

go vet ./...
go build ./...
go test -race -short ./...
