#!/bin/sh
# CI gate: vet, build, and run the full test suite under the race
# detector. -short keeps the paper-scale sweeps (keyrec -full, large
# fig6 sample counts) out of CI; they are exercised manually via
# `pandora <experiment> -full` or the single-shot benchmarks.
set -eux

go vet ./...
go build ./...
go test -race -short ./...

# Stats encapsulation: no package writes through another package's
# exported Stats value — counters are owned where they are declared and
# read through getters or obs.Registry snapshots. -v lists the owning
# packages (internal/serve's service counters are among them).
go run ./tools/statscheck -v internal cmd

# Differential oracle: pipeline vs emulator over a bounded seeded corpus,
# all optimization-toggle extremes plus rotating coverage, invariant
# checks on. The 9-bit mask space includes the speculation toggles
# (wrong-path fetch, StLF predictor) and the stride schedule guarantees
# the quick corpus exercises them; squash recovery races under the race
# detector. The -inject leg proves the oracle can actually catch a
# miscompiled pipeline, so a green sweep means something.
go run -race ./cmd/pandora check -quick
go run ./cmd/pandora check -quick -inject >/dev/null

# Leakage scanner: AES scans clean on baseline / leaks the key under
# silent stores, eBPF leaks the kernel byte through the IMP, the
# speculation scenarios leak only with their predictor on (a squashed
# access still trips the taint observers), and the taint self-test
# passes both ways. The -inject leg breaks the ALU propagation rule and
# requires the no-under-tainting invariant to object.
go run -race ./cmd/pandora scan -quick
go run ./cmd/pandora scan -inject >/dev/null

# Observability: the Chrome export of the aes scenario is valid JSON
# agreeing with the simulated cycle count, and the sweep scenario's
# JSONL is byte-identical across repeats and worker counts {1,8} —
# under the race detector, since the sweep exercises the parallel
# engine.
go run -race ./cmd/pandora trace -quick

# Fault campaign: seeded structural faults at every site class under the
# supervision layer (watchdog + invariants + oracle + state diff +
# timing). The gate requires at least one detector to fire per site class
# and zero false positives on the no-fault control arm.
go run -race ./cmd/pandora fault -quick

# Leakage-contract gate: the crypto-kernel library (ChaCha20 quarter
# round, Poly1305 accumulation, bitslice and table-lookup AES SubBytes,
# Montgomery-ladder cswap) enumerated over the rotating mask schedule ×
# two cache geometries. The constant-time kernels must verdict clean at
# mask 0, the table-lookup AES must leak through cache addresses at mask
# 0, the known optimization-induced breaks (silent stores vs the cswap,
# computation simplification vs everything) must appear, and the report
# must be byte-identical at 1 worker and 8 — under the race detector,
# since the enumeration rides the parallel engine.
go run -race ./cmd/pandora contract -quick

# Job service: a real `pandora serve` instance on an ephemeral port,
# driven over HTTP — one job per job type, an identical resubmission
# must be a byte-identical cache hit without re-executing (the
# serve.executed counter is the probe), and a corrupted cache entry must
# fail its HMAC identity header and be transparently recomputed. Under
# the race detector: submissions, the worker pool, the event streams and
# the graceful drain all run concurrently.
go run -race ./cmd/pandora serve -quick

# Chaos gate: the same service under seeded fault injection. Every
# accepted job reaches a terminal state; first-attempt panics retry to
# success with attempt history in the stored result; deterministic
# failures cache and never retry; a deadline kills a runaway job through
# the pipeline's cooperative cancellation checkpoint; a simulated crash
# (journaled acceptance, no stored result) replays to a byte-identical
# result exactly once on restart; a tampered journal record fails its
# HMAC and is rejected; an open circuit sheds with 503 + Retry-After.
go run -race ./cmd/pandora serve -chaos-quick

# Cycle-loop throughput gate: re-measure single-core cycles/sec and fail
# if it regressed more than 10% below the committed BENCH_cycles.json
# baseline. The check self-skips (exit 0, warning) when the baseline was
# recorded with a different CPU count, so a laptop baseline does not
# fail a wider CI box or vice versa.
go run ./cmd/pandora bench -cycles -check -json BENCH_cycles.json

# Fuzz smoke: a few seconds per target, same oracle as the sweep.
go test ./internal/diffcheck -fuzz FuzzDifferential -fuzztime 5s -run '^$'
go test ./internal/diffcheck -fuzz FuzzCacheHierarchy -fuzztime 5s -run '^$'
go test ./internal/taint -fuzz FuzzTaint -fuzztime 5s -run '^$'
