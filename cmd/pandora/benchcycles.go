package main

import (
	"fmt"
	"os"

	"pandora/cmd/pandora/internal/cli"
	"pandora/internal/cyclebench"
)

// cyclesFlags are the `pandora bench -cycles` knobs, registered alongside
// the parallel-bench flags on the shared bench command.
type cyclesFlags struct {
	enabled   *bool
	check     *bool
	force     *bool
	tolerance *float64
	programs  *int
	reps      *int
}

func registerCyclesFlags(c *cli.Command) cyclesFlags {
	fs := c.Flags()
	return cyclesFlags{
		enabled:   fs.Bool("cycles", false, "measure single-core cycles/sec instead of parallel speedup"),
		check:     fs.Bool("check", false, "with -cycles: compare against the committed baseline instead of writing (CI gate)"),
		force:     fs.Bool("force", false, "with -cycles or -serve: overwrite a baseline recorded under a different CPU configuration"),
		tolerance: fs.Float64("tolerance", cyclebench.DefaultTolerance, "with -cycles -check: fractional regression allowed before failing"),
		programs:  fs.Int("programs", 0, "with -cycles: workload program count (0 = default)"),
		reps:      fs.Int("reps", 0, "with -cycles: repetitions of the program set per mask (0 = default)"),
	}
}

// runBenchCycles implements `pandora bench -cycles`: measure cycles
// simulated per second over the fixed seeded workload and either write
// BENCH_cycles.json (default) or gate against the committed one (-check).
func runBenchCycles(c *cli.Command, f cyclesFlags, jsonPath string, seed int64) int {
	progress := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	rep, err := cyclebench.Measure(cyclebench.Options{
		Seed:     seed,
		Programs: *f.programs,
		Reps:     *f.reps,
		Progress: progress,
	})
	if err != nil {
		return c.Errorf(1, "%v", err)
	}

	if *f.check {
		baseline, err := cyclebench.ReadFile(jsonPath)
		if err != nil {
			return c.Errorf(1, "baseline: %v", err)
		}
		comparable, err := cyclebench.Compare(rep, baseline, *f.tolerance)
		if !comparable {
			fmt.Fprintf(os.Stderr,
				"pandora bench: baseline %s was measured at num_cpu=%d gomaxprocs=%d, this host has %d/%d; "+
					"wall-clock throughput is not comparable, gate skipped\n",
				jsonPath, baseline.NumCPU, baseline.GOMAXPROCS, rep.NumCPU, rep.GOMAXPROCS)
			return 0
		}
		if err != nil {
			return c.Errorf(1, "%v", err)
		}
		fmt.Printf("cycles/sec: measured %.0f vs committed %.0f (>= floor at %.0f%% tolerance) — ok\n",
			rep.TotalCyclesPerSec, baseline.TotalCyclesPerSec, *f.tolerance*100)
		return 0
	}

	// Writing a new baseline: keep the measurement trajectory
	// apples-to-apples. A committed baseline from a different CPU
	// configuration is not overwritten without -force, and the
	// pre-overhaul "before" marker carries forward.
	if prev, err := cyclebench.ReadFile(jsonPath); err == nil {
		if !rep.SameCPU(prev) && !*f.force {
			return c.Errorf(1,
				"%s was measured at num_cpu=%d gomaxprocs=%d but this run is %d/%d; "+
					"refusing to overwrite an apples-to-oranges baseline (use -force to override)",
				jsonPath, prev.NumCPU, prev.GOMAXPROCS, rep.NumCPU, rep.GOMAXPROCS)
		}
		if prev.BaselineBefore != nil {
			rep.BaselineBefore = prev.BaselineBefore
		} else if prev.TotalCyclesPerSec > 0 {
			rep.BaselineBefore = &cyclebench.Baseline{
				Date:         prev.Date,
				Note:         "previous committed measurement",
				CyclesPerSec: prev.TotalCyclesPerSec,
			}
		}
	}
	if rep.BaselineBefore != nil && rep.BaselineBefore.CyclesPerSec > 0 {
		rep.SpeedupVsBaseline = float64(int64(rep.TotalCyclesPerSec/rep.BaselineBefore.CyclesPerSec*100)) / 100
	}
	if err := rep.WriteFile(jsonPath); err != nil {
		return c.Errorf(1, "%v", err)
	}
	fmt.Printf("total: %.0f cycles/sec", rep.TotalCyclesPerSec)
	if rep.SpeedupVsBaseline > 0 {
		fmt.Printf(" (%.2fx vs %s baseline)", rep.SpeedupVsBaseline, rep.BaselineBefore.Date)
	}
	fmt.Printf("\nwrote %s\n", jsonPath)
	return 0
}
