package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"pandora/cmd/pandora/internal/cli"
	"pandora/internal/core"
	"pandora/internal/parallel"
)

// benchReport is the JSON artifact written by `pandora bench`. Speedups
// are wall-clock serial/parallel ratios on the machine that ran the
// benchmark; on a single-core host they hover around 1.0 (the engine adds
// only scheduling overhead) and grow with GOMAXPROCS.
type benchReport struct {
	Date              string  `json:"date"`
	GoVersion         string  `json:"go_version"`
	NumCPU            int     `json:"num_cpu"`
	GOMAXPROCS        int     `json:"gomaxprocs"`
	Workers           int     `json:"workers"`
	KeyrecSerialSec   float64 `json:"keyrec_serial_sec"`
	KeyrecParallelSec float64 `json:"keyrec_parallel_sec"`
	KeyrecSpeedup     float64 `json:"keyrec_speedup"`
	AllSerialSec      float64 `json:"all_serial_sec"`
	AllParallelSec    float64 `json:"all_parallel_sec"`
	AllSpeedup        float64 `json:"all_speedup"`
}

// runBench implements `pandora bench`: time the key-recovery sweep and
// the full experiment suite serially and with the parallel engine, and
// write the comparison to a JSON file.
func runBench(args []string) int {
	c := cli.New("bench", cli.WithParallel(), cli.WithSeed(1, "workload seed for -cycles"))
	jsonPath := c.Flags().String("json", "", "output path for the JSON report (default BENCH_parallel.json; BENCH_cycles.json with -cycles; BENCH_serve.json with -serve)")
	cf := registerCyclesFlags(c)
	sf := registerServeFlags(c)
	if err := c.Parse(args); err != nil {
		return 2
	}
	defer c.Close()
	if *cf.enabled {
		path := *jsonPath
		if path == "" {
			path = "BENCH_cycles.json"
		}
		return runBenchCycles(c, cf, path, *c.Seed)
	}
	if *sf.enabled {
		path := *jsonPath
		if path == "" {
			path = "BENCH_serve.json"
		}
		return runBenchServe(c, sf, *cf.force, path, *c.Parallel)
	}
	if *jsonPath == "" {
		*jsonPath = "BENCH_parallel.json"
	}
	workers := parallel.Workers(*c.Parallel)

	timeExp := func(name string, opts core.Options) (float64, error) {
		e, ok := core.Get(name)
		if !ok {
			return 0, fmt.Errorf("experiment %q not registered", name)
		}
		start := time.Now()
		if _, err := e.Run(opts); err != nil {
			return 0, err
		}
		return time.Since(start).Seconds(), nil
	}
	timeAll := func(opts core.Options) (float64, error) {
		start := time.Now()
		for _, e := range core.Experiments() {
			if _, err := e.Run(opts); err != nil {
				return 0, fmt.Errorf("%s: %w", e.Name, err)
			}
		}
		return time.Since(start).Seconds(), nil
	}

	rep := benchReport{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
	}
	var err error
	fmt.Fprintf(os.Stderr, "bench: keyrec serial...\n")
	if rep.KeyrecSerialSec, err = timeExp("keyrec", core.Options{Parallel: 1}); err == nil {
		fmt.Fprintf(os.Stderr, "bench: keyrec parallel=%d...\n", workers)
		rep.KeyrecParallelSec, err = timeExp("keyrec", core.Options{Parallel: workers})
	}
	if err == nil {
		fmt.Fprintf(os.Stderr, "bench: all experiments serial...\n")
		rep.AllSerialSec, err = timeAll(core.Options{Parallel: 1})
	}
	if err == nil {
		fmt.Fprintf(os.Stderr, "bench: all experiments parallel=%d...\n", workers)
		rep.AllParallelSec, err = timeAll(core.Options{Parallel: workers})
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pandora bench: %v\n", err)
		return 1
	}
	if rep.KeyrecParallelSec > 0 {
		rep.KeyrecSpeedup = rep.KeyrecSerialSec / rep.KeyrecParallelSec
	}
	if rep.AllParallelSec > 0 {
		rep.AllSpeedup = rep.AllSerialSec / rep.AllParallelSec
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "pandora bench: %v\n", err)
		return 1
	}
	out = append(out, '\n')
	if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "pandora bench: %v\n", err)
		return 1
	}
	fmt.Printf("keyrec: %.2fs serial, %.2fs at %d workers (%.2fx)\n",
		rep.KeyrecSerialSec, rep.KeyrecParallelSec, workers, rep.KeyrecSpeedup)
	fmt.Printf("all:    %.2fs serial, %.2fs at %d workers (%.2fx)\n",
		rep.AllSerialSec, rep.AllParallelSec, workers, rep.AllSpeedup)
	fmt.Printf("wrote %s\n", *jsonPath)
	return 0
}
