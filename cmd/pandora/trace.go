package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"pandora/cmd/pandora/internal/cli"
	"pandora/internal/core"
	"pandora/internal/obs"
)

// runTrace implements `pandora trace`: run a built-in scenario under
// the cycle-accurate probe and export the event trace as deterministic
// JSONL, Chrome trace-event JSON (load in Perfetto or chrome://tracing)
// or a text report with per-track activity and cycle attribution.
// `-quick` instead runs the CI validation suite.
func runTrace(args []string) int {
	c := cli.New("trace",
		cli.WithSeed(1, "sweep scenario corpus seed"),
		cli.WithParallel(),
		cli.WithQuick("CI validation: chrome export consistent with Cycles, JSONL byte-identical across worker counts"),
	)
	scenario := c.Flags().String("scenario", "aes", "built-in scenario: "+strings.Join(core.TraceScenarios(), " | "))
	format := c.Flags().String("format", "report", "export format: jsonl | chrome | report")
	window := c.Flags().String("window", "", "restrict export to cycles lo:hi (hi empty = unbounded)")
	outPath := c.Flags().String("o", "", "output path (default stdout)")
	if err := c.Parse(args); err != nil {
		return 2
	}
	defer c.Close()

	if *c.Quick {
		return traceQuick(c)
	}

	res, err := core.RunTrace(context.Background(), *scenario, *c.Seed, *c.Parallel)
	if err != nil {
		return c.Errorf(1, "%v", err)
	}
	tr := res.Trace
	if *window != "" {
		lo, hi, err := parseWindow(*window)
		if err != nil {
			return c.Errorf(2, "%v", err)
		}
		tr = tr.Window(lo, hi)
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return c.Errorf(1, "%v", err)
		}
		defer f.Close()
		out = f
	}

	switch *format {
	case "jsonl":
		err = tr.WriteJSONL(out)
	case "chrome":
		err = tr.WriteChrome(out)
	case "report":
		fmt.Fprintf(out, "scenario %s: %d cycles, %d retired, %d events\n",
			res.Scenario, res.Cycles, res.Retired, res.Trace.Len())
		err = tr.WriteReport(out)
	default:
		return c.Errorf(2, "unknown format %q (want jsonl, chrome or report)", *format)
	}
	if err != nil {
		return c.Errorf(1, "%v", err)
	}
	if *outPath != "" {
		fmt.Printf("wrote %s (%s, %d events)\n", *outPath, *format, tr.Len())
	}
	return 0
}

// parseWindow parses "lo:hi"; an empty hi means unbounded.
func parseWindow(s string) (lo, hi int64, err error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad -window %q: want lo:hi", s)
	}
	if lo, err = strconv.ParseInt(parts[0], 0, 64); err != nil {
		return 0, 0, fmt.Errorf("bad -window lo %q: %v", parts[0], err)
	}
	hi = -1
	if parts[1] != "" {
		if hi, err = strconv.ParseInt(parts[1], 0, 64); err != nil {
			return 0, 0, fmt.Errorf("bad -window hi %q: %v", parts[1], err)
		}
	}
	return lo, hi, nil
}

// traceQuick is the CI suite: end-to-end properties of the trace
// pipeline (ISSUE acceptance criteria — the Chrome export of the aes
// scenario is valid JSON whose retire track agrees with the simulated
// cycle count, and the sweep JSONL is byte-identical across repeats and
// worker counts).
func traceQuick(c *cli.Command) int {
	q := cli.NewQuickSuite("TRACE")

	aes, err := core.RunTrace(context.Background(), "aes", *c.Seed, *c.Parallel)
	if err != nil {
		return c.Errorf(1, "aes: %v", err)
	}
	var chrome bytes.Buffer
	if err := aes.Trace.WriteChrome(&chrome); err != nil {
		return c.Errorf(1, "aes chrome export: %v", err)
	}
	retireTs, parseErr := chromeRetireMax(chrome.Bytes())
	q.Assertf("chrome-valid-json", parseErr == nil, "%d bytes", chrome.Len())
	q.Assertf("chrome-retire-cycles", parseErr == nil && retireTs == aes.Cycles,
		"retire ts %d, cycles %d", retireTs, aes.Cycles)
	q.Assertf("aes-taint-events", aes.Trace.CountKind(obs.KindTaintLeak) > 0,
		"%d taint-leak events", aes.Trace.CountKind(obs.KindTaintLeak))

	var report bytes.Buffer
	if err := aes.Trace.WriteReport(&report); err != nil {
		return c.Errorf(1, "aes report export: %v", err)
	}
	q.Assertf("report-renders", report.Len() > 0, "%d bytes", report.Len())

	jsonl := func(workers int) ([]byte, error) {
		res, err := core.RunTrace(context.Background(), "sweep", *c.Seed, workers)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := res.Trace.WriteJSONL(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	s1a, err := jsonl(1)
	if err != nil {
		return c.Errorf(1, "sweep workers=1: %v", err)
	}
	s1b, err := jsonl(1)
	if err != nil {
		return c.Errorf(1, "sweep workers=1 repeat: %v", err)
	}
	s8, err := jsonl(8)
	if err != nil {
		return c.Errorf(1, "sweep workers=8: %v", err)
	}
	q.Assertf("sweep-jsonl-repeatable", bytes.Equal(s1a, s1b), "%d bytes", len(s1a))
	q.Assert("sweep-jsonl-workers", bytes.Equal(s1a, s8), "workers 1 vs 8 byte-identical")

	return q.Done()
}

// chromeRetireMax re-parses a Chrome trace-event export and returns the
// maximum timestamp on the retire track (slice ends included), i.e. the
// simulated cycle count the export claims.
func chromeRetireMax(data []byte) (int64, error) {
	var file struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Ts  int64  `json:"ts"`
			Tid int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		return 0, err
	}
	max := int64(-1)
	for _, e := range file.TraceEvents {
		if e.Ph == "M" || e.Tid != int(obs.TrackRetire) {
			continue
		}
		if e.Ts > max {
			max = e.Ts
		}
	}
	return max, nil
}
