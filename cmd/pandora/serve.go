package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pandora/cmd/pandora/internal/cli"
	"pandora/internal/faults"
	"pandora/internal/serve"
)

// runServe implements `pandora serve`: the long-running leakage-analysis
// service. Jobs for the six analyses arrive over POST /v1/jobs, run on
// a sharded worker pool, stream progress over GET /v1/jobs/{id}/events,
// and land in a content-addressed, tamper-evident result cache —
// identical resubmissions are served from the store without
// re-executing. SIGINT/SIGTERM drains gracefully: accepted jobs run to
// a stored result before the process exits. `-quick` instead runs the
// self-test: an ephemeral instance, one job per job type, cache
// miss→hit byte-identity, and tamper detection.
func runServe(args []string) int {
	c := cli.New("serve",
		cli.WithParallel(),
		cli.WithQuick("self-test on an ephemeral port: one job per type, cache hit byte-identity, tamper rejection"),
	)
	fs := c.Flags()
	addr := fs.String("addr", "127.0.0.1:8753", "listen address")
	cacheDir := fs.String("cache", ".pandora-cache", "result cache directory")
	shards := fs.Int("shards", 0, "worker pool shards (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "queued jobs per shard before 503 back-pressure (0 = 64)")
	timeout := fs.Duration("timeout", 0, "default per-job deadline when the spec omits timeout_ms (0 = none)")
	maxTimeout := fs.Duration("max-timeout", 10*time.Minute, "upper bound on client-requested job deadlines")
	drain := fs.Duration("drain", 15*time.Second, "shutdown window for in-flight jobs before they are cancelled and journaled for replay")
	retries := fs.Int("retries", 3, "attempt budget per job for transient failures (panics, watchdog stalls)")
	chaosQuick := fs.Bool("chaos-quick", false, "chaos self-test: injected panics, crash recovery, journal tamper, load shedding")
	if err := c.Parse(args); err != nil {
		return 2
	}
	defer c.Close()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if *chaosQuick {
		return serveChaosQuick(*c.Parallel)
	}
	if *c.Quick {
		return serveQuick(*c.Parallel)
	}

	srv, err := serve.New(serve.Options{
		Addr:           *addr,
		CacheDir:       *cacheDir,
		Shards:         *shards,
		QueueDepth:     *queue,
		Workers:        *c.Parallel,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		DrainWindow:    *drain,
		MaxAttempts:    *retries,
		Log:            logf,
	})
	if err != nil {
		return c.Errorf(1, "%v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := srv.ListenAndServe(ctx); err != nil {
		return c.Errorf(1, "%v", err)
	}
	return 0
}

// serveQuick is the CI self-test: a real server on an ephemeral port
// with a throwaway cache, exercised end to end over HTTP (ISSUE
// acceptance criteria — every job type round-trips, an identical
// resubmission is a byte-identical cache hit without re-execution, and
// a corrupted entry is rejected and transparently recomputed).
func serveQuick(workers int) int {
	q := cli.NewQuickSuite("SERVE")
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "pandora: serve: "+format+"\n", args...)
		return 1
	}

	dir, err := os.MkdirTemp("", "pandora-serve-quick-")
	if err != nil {
		return fail("%v", err)
	}
	defer os.RemoveAll(dir)
	srv, err := serve.New(serve.Options{CacheDir: dir, Workers: workers})
	if err != nil {
		return fail("%v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail("%v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()
	defer func() {
		cancel()
		<-served
	}()
	base := "http://" + ln.Addr().String()

	submit := func(spec serve.JobSpec) (serve.JobView, error) {
		body, err := json.Marshal(spec)
		if err != nil {
			return serve.JobView{}, err
		}
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return serve.JobView{}, err
		}
		var view serve.JobView
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			return serve.JobView{}, err
		}
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			return view, fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, view.Error)
		}
		deadline := time.Now().Add(120 * time.Second)
		for view.State != "done" && view.State != "failed" {
			if time.Now().After(deadline) {
				return view, fmt.Errorf("job %s did not settle", view.ID)
			}
			wresp, err := http.Get(base + "/v1/jobs/" + view.ID + "?wait=30s")
			if err != nil {
				return view, err
			}
			err = json.NewDecoder(wresp.Body).Decode(&view)
			wresp.Body.Close()
			if err != nil {
				return view, err
			}
		}
		if view.State != "done" {
			return view, fmt.Errorf("job %s failed: %s", view.ID, view.Error)
		}
		return view, nil
	}

	// One scaled-down job per job type. Each runs cold (executes) and is
	// then resubmitted: the second submission must be a cache hit with a
	// byte-identical result body.
	specs := []serve.JobSpec{
		{Kind: serve.KindBench, Experiment: "fig4"},
		{Kind: serve.KindCheck, Programs: 6, Masks: 1, Seed: 1},
		{Kind: serve.KindScan, Scenario: "stlf"},
		{Kind: serve.KindFault, Trials: 1, Sites: []string{"fence-stuck"}, Seed: 1},
		{Kind: serve.KindTrace, Scenario: "stlf", Format: "jsonl"},
		{Kind: serve.KindContract, Kernels: []string{"montladder-cswap"},
			Variants: []string{"default-lru"}, Masks: 4},
		// A self-registered crypto-kernel scenario, submitted like any
		// built-in: registration keeps the job API open.
		{Kind: serve.KindScan, Scenario: "chacha20-qr"},
	}
	label := func(spec serve.JobSpec) string {
		if spec.Kind == serve.KindScan && spec.Scenario != "stlf" {
			return string(spec.Kind) + "-kernel"
		}
		return string(spec.Kind)
	}
	var scanCold serve.JobView
	for _, spec := range specs {
		cold, err := submit(spec)
		if err != nil {
			return fail("%s cold: %v", label(spec), err)
		}
		warm, err := submit(spec)
		if err != nil {
			return fail("%s warm: %v", label(spec), err)
		}
		q.Assertf(label(spec)+"-cold-executes", !cold.Cached, "job %s key %.12s…", cold.ID, cold.Key)
		q.Assertf(label(spec)+"-warm-cache-hit",
			warm.Cached && bytes.Equal(cold.Result, warm.Result),
			"cached=%v, %d result bytes identical", warm.Cached, len(warm.Result))
		if spec.Kind == serve.KindScan && spec.Scenario == "stlf" {
			scanCold = cold
		}
	}

	stats := func() (map[string]uint64, error) {
		resp, err := http.Get(base + "/v1/stats")
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		var m map[string]uint64
		return m, json.NewDecoder(resp.Body).Decode(&m)
	}
	st, err := stats()
	if err != nil {
		return fail("stats: %v", err)
	}
	// The execution-count probe: one cold execution and one warm hit per
	// spec, nothing double-run.
	q.Assertf("executed-once-per-type", st["serve.executed"] == uint64(len(specs)),
		"serve.executed=%d", st["serve.executed"])
	q.Assertf("warm-pass-pure-hits", st["serve.cache.hits"] == uint64(len(specs)),
		"serve.cache.hits=%d", st["serve.cache.hits"])
	// On the happy path none of the reliability machinery fires.
	q.Assertf("happy-path-no-reliability-events",
		st["serve.retries"] == 0 && st["serve.shed"] == 0 && st["serve.wal_replayed"] == 0,
		"retries=%d shed=%d wal_replayed=%d",
		st["serve.retries"], st["serve.shed"], st["serve.wal_replayed"])

	// Corrupt the scan job's stored entry on disk; the next submission
	// must reject the entry and transparently recompute the same bytes.
	path := srv.Store().EntryPath(scanCold.Key)
	raw, err := os.ReadFile(path)
	if err != nil {
		return fail("read cache entry: %v", err)
	}
	raw[len(raw)-2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fail("corrupt cache entry: %v", err)
	}
	recomputed, err := submit(serve.JobSpec{Kind: serve.KindScan, Scenario: "stlf"})
	if err != nil {
		return fail("post-tamper scan: %v", err)
	}
	q.Assertf("tampered-entry-recomputed",
		!recomputed.Cached && bytes.Equal(recomputed.Result, scanCold.Result),
		"cached=%v, bytes match original=%v", recomputed.Cached,
		bytes.Equal(recomputed.Result, scanCold.Result))
	st, err = stats()
	if err != nil {
		return fail("stats: %v", err)
	}
	q.Assertf("tampered-entry-rejected", st["serve.cache.rejected"] == 1,
		"serve.cache.rejected=%d", st["serve.cache.rejected"])

	// The job's event stream replays the full lifecycle.
	resp, err := http.Get(base + "/v1/jobs/" + scanCold.ID + "/events")
	if err != nil {
		return fail("events: %v", err)
	}
	events, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fail("events: %v", err)
	}
	q.Assertf("events-stream-lifecycle",
		bytes.Contains(events, []byte(`"phase":"queued"`)) &&
			bytes.Contains(events, []byte(`"phase":"started"`)) &&
			bytes.Contains(events, []byte(`"phase":"done"`)),
		"%d stream bytes", len(events))

	return q.Done()
}

// chaosProbe is the -chaos-quick suite's HTTP client against one server
// instance: submit without settling, settle by polling, and read the
// stats counters.
type chaosProbe struct{ base string }

func (p chaosProbe) submit(spec serve.JobSpec) (serve.JobView, int, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return serve.JobView{}, 0, err
	}
	resp, err := http.Post(p.base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return serve.JobView{}, 0, err
	}
	defer resp.Body.Close()
	var view serve.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil && resp.StatusCode < 400 {
		return view, resp.StatusCode, err
	}
	return view, resp.StatusCode, nil
}

// settle polls until the job reaches a terminal state — unlike the
// happy-path suite it treats "failed" as a valid outcome, because half
// of what chaos-quick checks is that failures are VISIBLE.
func (p chaosProbe) settle(view serve.JobView) (serve.JobView, error) {
	deadline := time.Now().Add(120 * time.Second)
	for view.State != "done" && view.State != "failed" {
		if time.Now().After(deadline) {
			return view, fmt.Errorf("job %s did not settle (state %s)", view.ID, view.State)
		}
		resp, err := http.Get(p.base + "/v1/jobs/" + view.ID + "?wait=30s")
		if err != nil {
			return view, err
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			return view, err
		}
	}
	return view, nil
}

func (p chaosProbe) run(spec serve.JobSpec) (serve.JobView, error) {
	view, code, err := p.submit(spec)
	if err != nil {
		return view, err
	}
	if code != http.StatusOK && code != http.StatusAccepted {
		return view, fmt.Errorf("submit: HTTP %d: %s", code, view.Error)
	}
	return p.settle(view)
}

func (p chaosProbe) stats() (map[string]uint64, error) {
	resp, err := http.Get(p.base + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var m map[string]uint64
	return m, json.NewDecoder(resp.Body).Decode(&m)
}

// serveChaosQuick is the chaos gate (ISSUE acceptance criteria): under
// seeded fault injection every accepted job still reaches a terminal
// state, transient failures retry to success with their attempt history
// recorded, deterministic failures are cached and never retried,
// deadlines kill runaway jobs visibly, a simulated crash replays to a
// stored result exactly once, a tampered journal record is rejected
// rather than replayed, and an open circuit sheds load with 503 +
// Retry-After.
func serveChaosQuick(workers int) int {
	q := cli.NewQuickSuite("SERVE-CHAOS")
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "pandora: serve: chaos: "+format+"\n", args...)
		return 1
	}

	dir, err := os.MkdirTemp("", "pandora-serve-chaos-")
	if err != nil {
		return fail("%v", err)
	}
	defer os.RemoveAll(dir)

	start := func(opts serve.Options) (*serve.Server, chaosProbe, func(), error) {
		srv, err := serve.New(opts)
		if err != nil {
			return nil, chaosProbe{}, nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Close()
			return nil, chaosProbe{}, nil, err
		}
		ctx, cancel := context.WithCancel(context.Background())
		served := make(chan error, 1)
		go func() { served <- srv.Serve(ctx, ln) }()
		stop := func() { cancel(); <-served }
		return srv, chaosProbe{base: "http://" + ln.Addr().String()}, stop, nil
	}

	// Server A: every job's FIRST attempt panics. Retry must absorb all
	// of it.
	chaos := &faults.ChaosPlan{Seed: 1, PanicPerMille: 1000, FirstAttemptsOnly: true}
	srvA, probeA, stopA, err := start(serve.Options{
		CacheDir:  dir,
		Workers:   workers,
		RetryBase: 5 * time.Millisecond,
		Chaos:     chaos,
	})
	if err != nil {
		return fail("server A: %v", err)
	}

	check := serve.JobSpec{Kind: serve.KindCheck, Programs: 6, Masks: 1, Seed: 1}
	scan := serve.JobSpec{Kind: serve.KindScan, Scenario: "stlf"}
	for _, spec := range []serve.JobSpec{check, scan} {
		view, err := probeA.run(spec)
		if err != nil {
			return fail("%s under chaos: %v", spec.Kind, err)
		}
		q.Assertf(string(spec.Kind)+"-transient-retried-to-success",
			view.State == "done" && !view.Cached,
			"state=%s after injected first-attempt panic", view.State)
		if spec.Kind == serve.KindCheck {
			q.Assertf("attempt-history-in-stored-result",
				bytes.Contains(view.Result, []byte(`"attempts"`)) &&
					bytes.Contains(view.Result, []byte(`"transient"`)),
				"%d result bytes", len(view.Result))
		}
	}

	// A deterministic failure (unassemblable source) is never retried,
	// and its failure caches: the resubmission serves it without
	// executing.
	bad := serve.JobSpec{Kind: serve.KindScan, Source: "this is not an instruction\n"}
	badCold, err := probeA.run(bad)
	if err != nil {
		return fail("deterministic failure: %v", err)
	}
	badWarm, err := probeA.run(bad)
	if err != nil {
		return fail("deterministic resubmit: %v", err)
	}
	q.Assertf("deterministic-failure-visible",
		badCold.State == "failed" && badCold.Error != "",
		"state=%s error=%q", badCold.State, badCold.Error)
	q.Assertf("deterministic-failure-cached",
		badWarm.State == "failed" && badWarm.Cached && badWarm.Error == badCold.Error,
		"state=%s cached=%v", badWarm.State, badWarm.Cached)

	// A deadline kills a job that would run far longer, visibly.
	slow := serve.JobSpec{Kind: serve.KindCheck, Programs: 200000, Masks: 3, Seed: 9, TimeoutMS: 150}
	timedOut, err := probeA.run(slow)
	if err != nil {
		return fail("deadline job: %v", err)
	}
	q.Assertf("deadline-kills-runaway-job",
		timedOut.State == "failed" && strings.Contains(timedOut.Error, "deadline"),
		"state=%s error=%q", timedOut.State, timedOut.Error)

	st, err := probeA.stats()
	if err != nil {
		return fail("stats A: %v", err)
	}
	// 4 first-attempt panics retried (check, scan, bad scan, deadline
	// job); the bad scan's second attempt failed deterministically with
	// no further retry; the deadline job's second attempt was aborted.
	q.Assertf("retries-counted", st["serve.retries"] == 4, "serve.retries=%d", st["serve.retries"])
	q.Assertf("timeouts-counted", st["serve.timeouts"] == 1, "serve.timeouts=%d", st["serve.timeouts"])
	q.Assertf("executed-exactly-per-job", st["serve.executed"] == 4, "serve.executed=%d", st["serve.executed"])
	stopA()
	pending, _ := srvA.WALDiagnostics()
	q.Assertf("no-job-lost-in-journal", pending == 0, "pending=%d after full drain", pending)

	// Crash recovery: forge a server that died after journaling an
	// acceptance but before storing the result, then restart on the same
	// directory. The replayed job's first attempt panics too — recovery
	// and retry must compose.
	crashed := serve.JobSpec{Kind: serve.KindCheck, Programs: 5, Masks: 1, Seed: 99}
	key, err := serve.SimulateCrashedJob(dir, crashed)
	if err != nil {
		return fail("SimulateCrashedJob: %v", err)
	}
	srvB, probeB, stopB, err := start(serve.Options{
		CacheDir:  dir,
		Workers:   workers,
		RetryBase: 5 * time.Millisecond,
		Chaos:     chaos,
	})
	if err != nil {
		return fail("server B: %v", err)
	}
	deadline := time.Now().Add(60 * time.Second)
	var outcome serve.Outcome
	for {
		_, outcome, _ = srvB.Store().Get(key)
		if outcome == serve.Hit || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	q.Assertf("crashed-job-replayed-to-stored-result", outcome == serve.Hit, "outcome=%v", outcome)
	st, err = probeB.stats()
	if err != nil {
		return fail("stats B: %v", err)
	}
	q.Assertf("replay-exactly-once",
		st["serve.wal_replayed"] == 1 && st["serve.executed"] == 1,
		"wal_replayed=%d executed=%d", st["serve.wal_replayed"], st["serve.executed"])
	stopB()

	// Journal tamper: flip one byte inside a forged pending record. The
	// restart must reject it rather than replay a spec it cannot
	// authenticate.
	forged := serve.JobSpec{Kind: serve.KindCheck, Programs: 7, Masks: 1, Seed: 42}
	if _, err := serve.SimulateCrashedJob(dir, forged); err != nil {
		return fail("forge tamper target: %v", err)
	}
	raw, err := os.ReadFile(serve.WALPath(dir))
	if err != nil {
		return fail("read journal: %v", err)
	}
	tampered := bytes.Replace(raw, []byte(`"programs":7`), []byte(`"programs":8`), 1)
	if bytes.Equal(tampered, raw) {
		return fail("tamper target not found in journal")
	}
	if err := os.WriteFile(serve.WALPath(dir), tampered, 0o600); err != nil {
		return fail("write tampered journal: %v", err)
	}
	srvC, probeC, stopC, err := start(serve.Options{CacheDir: dir, Workers: workers})
	if err != nil {
		return fail("server C: %v", err)
	}
	st, err = probeC.stats()
	if err != nil {
		return fail("stats C: %v", err)
	}
	q.Assertf("tampered-journal-record-rejected",
		st["serve.wal_rejected"] >= 1 && st["serve.wal_replayed"] == 0 && st["serve.executed"] == 0,
		"wal_rejected=%d wal_replayed=%d executed=%d",
		st["serve.wal_rejected"], st["serve.wal_replayed"], st["serve.executed"])
	stopC()
	_ = srvC

	// Load shedding: two consecutive deterministic scan failures open
	// the scan circuit; the next scan is shed with 503 + Retry-After.
	dir2, err := os.MkdirTemp("", "pandora-serve-chaos-breaker-")
	if err != nil {
		return fail("%v", err)
	}
	defer os.RemoveAll(dir2)
	_, probeD, stopD, err := start(serve.Options{
		CacheDir:         dir2,
		Workers:          workers,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
	})
	if err != nil {
		return fail("server D: %v", err)
	}
	defer stopD()
	for i, src := range []string{"bogus one\n", "bogus two\n"} {
		view, err := probeD.run(serve.JobSpec{Kind: serve.KindScan, Source: src})
		if err != nil || view.State != "failed" {
			return fail("breaker setup %d: state=%s err=%v", i, view.State, err)
		}
	}
	shedView, code, err := probeD.submit(serve.JobSpec{Kind: serve.KindScan, Scenario: "stlf"})
	if err != nil {
		return fail("shed submit: %v", err)
	}
	resp, err := http.Get(probeD.base + "/readyz")
	if err != nil {
		return fail("readyz: %v", err)
	}
	resp.Body.Close()
	st, err = probeD.stats()
	if err != nil {
		return fail("stats D: %v", err)
	}
	q.Assertf("open-circuit-sheds-with-503",
		code == http.StatusServiceUnavailable && st["serve.shed"] == 1,
		"HTTP %d (%s), serve.shed=%d", code, shedView.Error, st["serve.shed"])
	q.Assertf("readyz-reports-open-circuit",
		resp.StatusCode == http.StatusServiceUnavailable,
		"readyz HTTP %d", resp.StatusCode)

	return q.Done()
}
