package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pandora/cmd/pandora/internal/cli"
	"pandora/internal/serve"
)

// runServe implements `pandora serve`: the long-running leakage-analysis
// service. Jobs for the five analyses arrive over POST /v1/jobs, run on
// a sharded worker pool, stream progress over GET /v1/jobs/{id}/events,
// and land in a content-addressed, tamper-evident result cache —
// identical resubmissions are served from the store without
// re-executing. SIGINT/SIGTERM drains gracefully: accepted jobs run to
// a stored result before the process exits. `-quick` instead runs the
// self-test: an ephemeral instance, one job per job type, cache
// miss→hit byte-identity, and tamper detection.
func runServe(args []string) int {
	c := cli.New("serve",
		cli.WithParallel(),
		cli.WithQuick("self-test on an ephemeral port: one job per type, cache hit byte-identity, tamper rejection"),
	)
	fs := c.Flags()
	addr := fs.String("addr", "127.0.0.1:8753", "listen address")
	cacheDir := fs.String("cache", ".pandora-cache", "result cache directory")
	shards := fs.Int("shards", 0, "worker pool shards (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "queued jobs per shard before 503 back-pressure (0 = 64)")
	if err := c.Parse(args); err != nil {
		return 2
	}
	defer c.Close()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if *c.Quick {
		return serveQuick(*c.Parallel)
	}

	srv, err := serve.New(serve.Options{
		Addr:       *addr,
		CacheDir:   *cacheDir,
		Shards:     *shards,
		QueueDepth: *queue,
		Workers:    *c.Parallel,
		Log:        logf,
	})
	if err != nil {
		return c.Errorf(1, "%v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := srv.ListenAndServe(ctx); err != nil {
		return c.Errorf(1, "%v", err)
	}
	return 0
}

// serveQuick is the CI self-test: a real server on an ephemeral port
// with a throwaway cache, exercised end to end over HTTP (ISSUE
// acceptance criteria — every job type round-trips, an identical
// resubmission is a byte-identical cache hit without re-execution, and
// a corrupted entry is rejected and transparently recomputed).
func serveQuick(workers int) int {
	q := cli.NewQuickSuite("SERVE")
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "pandora: serve: "+format+"\n", args...)
		return 1
	}

	dir, err := os.MkdirTemp("", "pandora-serve-quick-")
	if err != nil {
		return fail("%v", err)
	}
	defer os.RemoveAll(dir)
	srv, err := serve.New(serve.Options{CacheDir: dir, Workers: workers})
	if err != nil {
		return fail("%v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail("%v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()
	defer func() {
		cancel()
		<-served
	}()
	base := "http://" + ln.Addr().String()

	submit := func(spec serve.JobSpec) (serve.JobView, error) {
		body, err := json.Marshal(spec)
		if err != nil {
			return serve.JobView{}, err
		}
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return serve.JobView{}, err
		}
		var view serve.JobView
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			return serve.JobView{}, err
		}
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			return view, fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, view.Error)
		}
		deadline := time.Now().Add(120 * time.Second)
		for view.State != "done" && view.State != "failed" {
			if time.Now().After(deadline) {
				return view, fmt.Errorf("job %s did not settle", view.ID)
			}
			wresp, err := http.Get(base + "/v1/jobs/" + view.ID + "?wait=30s")
			if err != nil {
				return view, err
			}
			err = json.NewDecoder(wresp.Body).Decode(&view)
			wresp.Body.Close()
			if err != nil {
				return view, err
			}
		}
		if view.State != "done" {
			return view, fmt.Errorf("job %s failed: %s", view.ID, view.Error)
		}
		return view, nil
	}

	// One scaled-down job per job type. Each runs cold (executes) and is
	// then resubmitted: the second submission must be a cache hit with a
	// byte-identical result body.
	specs := []serve.JobSpec{
		{Kind: serve.KindBench, Experiment: "fig4"},
		{Kind: serve.KindCheck, Programs: 6, Masks: 1, Seed: 1},
		{Kind: serve.KindScan, Scenario: "stlf"},
		{Kind: serve.KindFault, Trials: 1, Sites: []string{"fence-stuck"}, Seed: 1},
		{Kind: serve.KindTrace, Scenario: "stlf", Format: "jsonl"},
	}
	var scanCold serve.JobView
	for _, spec := range specs {
		cold, err := submit(spec)
		if err != nil {
			return fail("%s cold: %v", spec.Kind, err)
		}
		warm, err := submit(spec)
		if err != nil {
			return fail("%s warm: %v", spec.Kind, err)
		}
		q.Assertf(string(spec.Kind)+"-cold-executes", !cold.Cached, "job %s key %.12s…", cold.ID, cold.Key)
		q.Assertf(string(spec.Kind)+"-warm-cache-hit",
			warm.Cached && bytes.Equal(cold.Result, warm.Result),
			"cached=%v, %d result bytes identical", warm.Cached, len(warm.Result))
		if spec.Kind == serve.KindScan {
			scanCold = cold
		}
	}

	stats := func() (map[string]uint64, error) {
		resp, err := http.Get(base + "/v1/stats")
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		var m map[string]uint64
		return m, json.NewDecoder(resp.Body).Decode(&m)
	}
	st, err := stats()
	if err != nil {
		return fail("stats: %v", err)
	}
	// The execution-count probe: 5 cold executions, 5 warm hits, nothing
	// double-run.
	q.Assertf("executed-once-per-type", st["serve.executed"] == uint64(len(specs)),
		"serve.executed=%d", st["serve.executed"])
	q.Assertf("warm-pass-pure-hits", st["serve.cache.hits"] == uint64(len(specs)),
		"serve.cache.hits=%d", st["serve.cache.hits"])

	// Corrupt the scan job's stored entry on disk; the next submission
	// must reject the entry and transparently recompute the same bytes.
	path := srv.Store().EntryPath(scanCold.Key)
	raw, err := os.ReadFile(path)
	if err != nil {
		return fail("read cache entry: %v", err)
	}
	raw[len(raw)-2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fail("corrupt cache entry: %v", err)
	}
	recomputed, err := submit(serve.JobSpec{Kind: serve.KindScan, Scenario: "stlf"})
	if err != nil {
		return fail("post-tamper scan: %v", err)
	}
	q.Assertf("tampered-entry-recomputed",
		!recomputed.Cached && bytes.Equal(recomputed.Result, scanCold.Result),
		"cached=%v, bytes match original=%v", recomputed.Cached,
		bytes.Equal(recomputed.Result, scanCold.Result))
	st, err = stats()
	if err != nil {
		return fail("stats: %v", err)
	}
	q.Assertf("tampered-entry-rejected", st["serve.cache.rejected"] == 1,
		"serve.cache.rejected=%d", st["serve.cache.rejected"])

	// The job's event stream replays the full lifecycle.
	resp, err := http.Get(base + "/v1/jobs/" + scanCold.ID + "/events")
	if err != nil {
		return fail("events: %v", err)
	}
	events, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fail("events: %v", err)
	}
	q.Assertf("events-stream-lifecycle",
		bytes.Contains(events, []byte(`"phase":"queued"`)) &&
			bytes.Contains(events, []byte(`"phase":"started"`)) &&
			bytes.Contains(events, []byte(`"phase":"done"`)),
		"%d stream bytes", len(events))

	return q.Done()
}
