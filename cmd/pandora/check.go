package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"pandora/internal/diffcheck"
	"pandora/internal/faults"
)

// runCheck implements `pandora check`: the differential-oracle sweep that
// compares the pipeline against the functional emulator over a seeded
// corpus, under every optimization-toggle combination (sampled per
// program, covered in full across the corpus) and a spread of cache
// variants, with runtime invariant checking enabled throughout.
func runCheck(args []string) int {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	n := fs.Int("n", 500, "generated program count")
	seed := fs.Int64("seed", 1, "corpus seed")
	masks := fs.Int("masks", 3, "extra random toggle masks per program")
	quick := fs.Bool("quick", false, "bounded CI sweep (64 programs, 1 extra mask)")
	workers := fs.Int("parallel", 0, "worker count (0 = GOMAXPROCS)")
	inject := fs.Bool("inject", false, "inject a deliberate pipeline bug (SRA executed as SRL); the sweep must catch it")
	verbose := fs.Bool("v", false, "progress tracing")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	opts := diffcheck.Options{
		Programs:        *n,
		Seed:            *seed,
		MasksPerProgram: *masks,
		Workers:         *workers,
	}
	if *quick {
		opts.Programs = 64
		opts.MasksPerProgram = 1
	}
	if *inject {
		// The injected bug is the SiteMiscompile fault plan — the same
		// injector `pandora fault` sweeps, applied here as a Subject.
		opts.Subject = diffcheck.SubjectFromPlan(&faults.Plan{Site: faults.SiteMiscompile})
	}
	if *verbose {
		opts.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	rep, err := diffcheck.Check(context.Background(), opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pandora: check: %v\n", err)
		return 1
	}
	fmt.Print(rep)

	if *inject {
		// Inverted expectation: the sweep validates itself by catching the
		// injected bug.
		if rep.Ok() {
			fmt.Println("[INJECTED BUG NOT CAUGHT]")
			return 1
		}
		fmt.Println("[INJECTED BUG CAUGHT]")
		return 0
	}
	if !rep.Ok() {
		return 1
	}
	fmt.Println("[CLEAN]")
	return 0
}
