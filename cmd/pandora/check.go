package main

import (
	"context"
	"fmt"

	"pandora/cmd/pandora/internal/cli"
	"pandora/internal/diffcheck"
	"pandora/internal/faults"
	"pandora/internal/serve"
)

// runCheck implements `pandora check`: the differential-oracle sweep that
// compares the pipeline against the functional emulator over a seeded
// corpus, under every optimization-toggle combination (sampled per
// program, covered in full across the corpus) and a spread of cache
// variants, with runtime invariant checking enabled throughout.
//
// The standard sweep executes through the serve.JobRunner the
// `pandora serve` service uses; only -inject (which wires a Subject the
// job API deliberately cannot express) drives diffcheck directly.
func runCheck(args []string) int {
	c := cli.New("check",
		cli.WithSeed(1, "corpus seed"),
		cli.WithParallel(),
		cli.WithQuick("bounded CI sweep (64 programs, 1 extra mask)"),
		cli.WithVerbose(),
	)
	n := c.Flags().Int("n", 512, "generated program count (512 covers every toggle mask via the rotating schedule)")
	masks := c.Flags().Int("masks", 3, "extra random toggle masks per program")
	inject := c.Flags().Bool("inject", false, "inject a deliberate pipeline bug (SRA executed as SRL); the sweep must catch it")
	if err := c.Parse(args); err != nil {
		return 2
	}
	defer c.Close()

	programs, masksPer := *n, *masks
	if *c.Quick {
		programs, masksPer = 64, 1
	}

	if *inject {
		// The injected bug is the SiteMiscompile fault plan — the same
		// injector `pandora fault` sweeps, applied here as a Subject.
		// Inverted expectation: the sweep validates itself by catching it.
		rep, err := diffcheck.Check(context.Background(), diffcheck.Options{
			Programs:        programs,
			Seed:            *c.Seed,
			MasksPerProgram: masksPer,
			Workers:         *c.Parallel,
			Log:             c.LogFunc(),
			Subject:         diffcheck.SubjectFromPlan(&faults.Plan{Site: faults.SiteMiscompile}),
		})
		if err != nil {
			return c.Errorf(1, "%v", err)
		}
		fmt.Print(rep)
		if rep.Ok() {
			fmt.Println("[INJECTED BUG NOT CAUGHT]")
			return 1
		}
		fmt.Println("[INJECTED BUG CAUGHT]")
		return 0
	}

	canon, err := serve.Canonical(serve.JobSpec{
		Kind:     serve.KindCheck,
		Seed:     *c.Seed,
		Programs: programs,
		Masks:    masksPer,
	})
	if err != nil {
		return c.Errorf(2, "%v", err)
	}
	runner, _ := serve.Runner(serve.KindCheck)
	res, err := runner.Run(context.Background(), canon, serve.RunOpts{
		Workers: *c.Parallel,
		Log:     c.LogFunc(),
	})
	if err != nil {
		return c.Errorf(1, "%v", err)
	}
	fmt.Print(res.Text)
	if !res.Pass {
		return 1
	}
	fmt.Println("[CLEAN]")
	return 0
}
