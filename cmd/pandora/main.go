// Command pandora regenerates the tables and figures of "Opening
// Pandora's Box" (ISCA 2021) on the simulator stack in this repository.
//
// Usage:
//
//	pandora list                 # enumerate experiments
//	pandora <experiment> [flags] # run one (e.g. pandora table1)
//	pandora all [flags]          # run every experiment
//	pandora bench [flags]        # time serial vs parallel, write JSON
//
// Flags:
//
//	-samples N    distribution sample count (fig6)
//	-secretlen N  bytes to leak in the URG experiments
//	-full         full-scale sweeps (keyrec: 65536 values per slot)
//	-parallel N   worker count (0 = GOMAXPROCS); results are identical
//	              at every worker count
//	-v            narrative progress tracing
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"pandora/internal/asm"
	"pandora/internal/cache"
	"pandora/internal/core"
	"pandora/internal/isa"
	"pandora/internal/mem"
	"pandora/internal/parallel"
	"pandora/internal/pipeline"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	if cmd == "run" {
		os.Exit(runAssembly(os.Args[2:]))
	}
	if cmd == "bench" {
		os.Exit(runBench(os.Args[2:]))
	}
	if cmd == "check" {
		os.Exit(runCheck(os.Args[2:]))
	}
	if cmd == "scan" {
		os.Exit(runScan(os.Args[2:]))
	}
	if cmd == "fault" {
		os.Exit(runFault(os.Args[2:]))
	}
	if cmd == "trace" {
		os.Exit(runTrace(os.Args[2:]))
	}
	if cmd == "serve" {
		os.Exit(runServe(os.Args[2:]))
	}
	if cmd == "contract" {
		os.Exit(runContract(os.Args[2:]))
	}

	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	samples := fs.Int("samples", 0, "distribution sample count")
	secretLen := fs.Int("secretlen", 0, "bytes to leak in URG experiments")
	full := fs.Bool("full", false, "full-scale sweeps")
	workers := fs.Int("parallel", 0, "worker count (0 = GOMAXPROCS)")
	verbose := fs.Bool("v", false, "narrative progress tracing")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	opts := core.Options{Samples: *samples, SecretLen: *secretLen, Full: *full, Parallel: *workers}
	if *verbose {
		opts.Trace = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	switch cmd {
	case "list", "help", "-h", "--help":
		usage()
	case "all":
		if failed := runAll(opts); failed > 0 {
			fmt.Fprintf(os.Stderr, "\n%d experiment(s) did not reproduce\n", failed)
			os.Exit(1)
		}
	default:
		e, ok := core.Get(cmd)
		if !ok {
			fmt.Fprintf(os.Stderr, "pandora: unknown experiment %q\n\n", cmd)
			usage()
			os.Exit(2)
		}
		if !runOne(e, opts) {
			os.Exit(1)
		}
	}
}

func runOne(e *core.Experiment, opts core.Options) bool {
	fmt.Printf("== %s (%s) ==\n\n", e.Name, e.Artifact)
	res, err := e.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pandora: %s: %v\n", e.Name, err)
		return false
	}
	fmt.Println(res.Text)
	status := "REPRODUCED"
	if !res.Pass {
		status = "NOT REPRODUCED"
	}
	fmt.Printf("[%s]\n\n", status)
	return res.Pass
}

// runAll executes every registered experiment. With more than one worker
// the experiments themselves are the parallel units: each runs serially
// inside (Parallel=1, avoiding worker oversubscription), output is
// buffered per experiment, and the buffers print in registration order —
// byte-identical to a serial `pandora all`. Returns the failure count.
func runAll(opts core.Options) int {
	type allResult struct {
		text string
		pass bool
	}
	exps := core.Experiments()
	inner := opts
	if parallel.Workers(opts.Parallel) > 1 {
		inner.Parallel = 1
		inner.Trace = nil // interleaved traces from concurrent experiments are useless
	}
	results, err := parallel.Map(context.Background(), opts.Parallel, exps,
		func(_ context.Context, _ int, e *core.Experiment) (allResult, error) {
			res, err := e.Run(inner)
			if err != nil {
				return allResult{
					text: fmt.Sprintf("== %s (%s) ==\n\npandora: %s: %v\n", e.Name, e.Artifact, e.Name, err),
				}, nil
			}
			status := "REPRODUCED"
			if !res.Pass {
				status = "NOT REPRODUCED"
			}
			return allResult{
				text: fmt.Sprintf("== %s (%s) ==\n\n%s\n[%s]\n\n", e.Name, e.Artifact, res.Text, status),
				pass: res.Pass,
			}, nil
		})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pandora: %v\n", err)
		return len(exps)
	}
	failed := 0
	for _, r := range results {
		fmt.Print(r.text)
		if !r.pass {
			failed++
		}
	}
	return failed
}

// runAssembly implements `pandora run <file.s>`: execute an assembly file
// on a configurable simulated machine and report timing.
func runAssembly(args []string) int {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	machine := fs.String("machine", "", "comma-separated machine features: "+core.MachineFeatures())
	events := fs.Bool("events", false, "print the pipeline event log")
	pipeview := fs.Bool("pipeview", false, "draw a per-µop pipeline diagram")
	regs := fs.Bool("regs", false, "dump non-zero architectural registers")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pandora run [-machine spec] [-events] [-pipeview] [-regs] <file.s>")
		return 2
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "pandora: %v\n", err)
		return 1
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "pandora: %v\n", err)
		return 1
	}
	cfg, err := core.ParseMachineSpec(*machine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pandora: %v\n", err)
		return 1
	}
	cfg.RecordEvents = *events || *pipeview
	m, err := pipeline.New(cfg, mem.New(), cache.MustNewHierarchy(cache.DefaultHierConfig()))
	if err != nil {
		fmt.Fprintf(os.Stderr, "pandora: %v\n", err)
		return 1
	}
	res, err := m.Run(prog)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pandora: %v\n", err)
		return 1
	}
	fmt.Printf("cycles:  %d\nretired: %d\nIPC:     %.3f\n", res.Cycles, res.Retired,
		float64(res.Retired)/float64(res.Cycles))
	fmt.Printf("stats:   %+v\n", m.Stats())
	if *regs {
		for r := isa.Reg(1); r < isa.NumRegs; r++ {
			if v := m.Reg(r); v != 0 {
				fmt.Printf("  %v = %d (%#x)\n", r, v, v)
			}
		}
	}
	if *events {
		for _, e := range m.Events {
			fmt.Println(e)
		}
	}
	if *pipeview {
		fmt.Print(pipeline.RenderPipeview(m.Events, 96))
	}
	return 0
}

func usage() {
	fmt.Println("pandora — reproduction harness for \"Opening Pandora's Box\" (ISCA 2021)")
	fmt.Println("\nexperiments:")
	for _, e := range core.Experiments() {
		fmt.Printf("  %-16s %-24s %s\n", e.Name, e.Artifact, e.Title)
	}
	fmt.Println("\nscenarios (registry; crypto kernels self-register alongside the built-ins):")
	fmt.Printf("  scan:  %s\n", strings.Join(core.ScanScenarios(), " | "))
	fmt.Printf("  trace: %s\n", strings.Join(core.TraceScenarios(), " | "))
	fmt.Println("\nusage: pandora <experiment>|all|list [-samples N] [-secretlen N] [-full] [-parallel N] [-v]")
	fmt.Println("       pandora bench [-parallel N] [-json path] | -cycles [-check] | -serve [-jobs N]")
	fmt.Println("       pandora run [-machine spec] [-events] [-pipeview] [-regs] <file.s>")
	fmt.Println("       pandora check [-n N] [-seed S] [-masks K] [-quick] [-inject] [-parallel N] [-v]")
	fmt.Println("       pandora scan [-machine spec] [-secret base:len[:name]] [-json] <file.s>")
	fmt.Println("       pandora scan -scenario <scan scenario> | -quick | -inject")
	fmt.Println("       pandora fault [-seed S] [-trials N] [-sites a,b] [-quick] [-journal path [-resume]]")
	fmt.Println("                     [-dump-dir dir] [-json] [-parallel N] [-v]")
	fmt.Println("       pandora trace [-scenario <trace scenario>] [-format jsonl|chrome|report]")
	fmt.Println("                     [-window lo:hi] [-o path] [-seed S] [-parallel N] | -quick")
	fmt.Println("       pandora serve [-addr host:port] [-cache dir] [-shards N] [-queue N] [-parallel N] | -quick")
	fmt.Println("       pandora contract [-kernels a,b] [-variants a,b] [-masks N] [-json] [-o path] [-parallel N] | -quick")
}
