package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pandora/cmd/pandora/internal/cli"
	"pandora/internal/core"
	"pandora/internal/faults"
	"pandora/internal/taint"
)

// runScan implements `pandora scan`: the shadow-label leakage scanner.
// It runs a program with per-byte secret labels propagated alongside
// architectural state and reports every optimization whose trigger
// condition depended on a secret. Like a linter, it exits non-zero when
// leaks are found; `-quick` instead runs the CI assertion suite.
func runScan(args []string) int {
	c := cli.New("scan",
		cli.WithJSON("emit the report as JSON"),
		cli.WithQuick("CI assertions: AES/StLF/spec-vect baselines clean, optimization runs dirty, propagation self-test"),
	)
	fs := c.Flags()
	inject := fs.Bool("inject", false, "break the ALU propagation rule; the self-test must catch it")
	scenario := fs.String("scenario", "", "built-in scenario: aes | aes-baseline | ebpf | stlf | stlf-baseline | specvect | specvect-baseline")
	machine := fs.String("machine", "", "machine features for source scans: "+core.MachineFeatures())
	secretFlag := fs.String("secret", "", "extra secret region base:len[:name] for source scans")
	if err := c.Parse(args); err != nil {
		return 2
	}
	defer c.Close()
	quick, jsonOut := c.Quick, c.JSON

	if *inject {
		// Inverted expectation: the propagation checker validates itself
		// by catching the SiteTaintALU fault plan — the same injector
		// `pandora fault` uses — breaking the ALU propagation rule.
		if err := taint.SelfTestPlan(&faults.Plan{Site: faults.SiteTaintALU}); err != nil {
			fmt.Fprintf(os.Stderr, "pandora: scan: %v\n", err)
			fmt.Println("[INJECTED TAINT BUG NOT CAUGHT]")
			return 1
		}
		fmt.Println("[INJECTED TAINT BUG CAUGHT]")
		return 0
	}
	if *quick {
		return runScanQuick()
	}

	var (
		sum core.ScanSummary
		err error
	)
	switch {
	case *scenario != "":
		switch *scenario {
		case "aes":
			sum, err = core.ScanAES(true)
		case "aes-baseline":
			sum, err = core.ScanAES(false)
		case "ebpf":
			sum, err = core.ScanEBPF()
		case "stlf":
			sum, err = core.ScanStLF(true)
		case "stlf-baseline":
			sum, err = core.ScanStLF(false)
		case "specvect":
			sum, err = core.ScanSpecVect(true)
		case "specvect-baseline":
			sum, err = core.ScanSpecVect(false)
		default:
			fmt.Fprintf(os.Stderr, "pandora: scan: unknown scenario %q (want aes, aes-baseline, ebpf, stlf, stlf-baseline, specvect or specvect-baseline)\n", *scenario)
			return 2
		}
	case fs.NArg() == 1:
		var src []byte
		src, err = os.ReadFile(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "pandora: %v\n", err)
			return 1
		}
		var extra []taint.Secret
		if *secretFlag != "" {
			s, perr := parseSecretFlag(*secretFlag)
			if perr != nil {
				fmt.Fprintf(os.Stderr, "pandora: scan: %v\n", perr)
				return 2
			}
			extra = append(extra, s)
		}
		sum, err = core.ScanSource(string(src), *machine, extra)
	default:
		fmt.Fprintln(os.Stderr, "usage: pandora scan [-machine spec] [-secret base:len[:name]] [-json] <file.s>")
		fmt.Fprintln(os.Stderr, "       pandora scan -scenario aes|aes-baseline|ebpf|stlf|stlf-baseline|specvect|specvect-baseline [-json]")
		fmt.Fprintln(os.Stderr, "       pandora scan -quick | -inject")
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pandora: scan: %v\n", err)
		return 1
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			fmt.Fprintf(os.Stderr, "pandora: scan: %v\n", err)
			return 1
		}
	} else {
		fmt.Print(sum.Format())
	}
	if sum.Total > 0 {
		return 1
	}
	return 0
}

// parseSecretFlag parses "base:len[:name]" (numbers in any Go literal
// base).
func parseSecretFlag(s string) (taint.Secret, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 && len(parts) != 3 {
		return taint.Secret{}, fmt.Errorf("bad -secret %q: want base:len[:name]", s)
	}
	base, err := strconv.ParseUint(parts[0], 0, 64)
	if err != nil {
		return taint.Secret{}, fmt.Errorf("bad -secret base %q: %v", parts[0], err)
	}
	n, err := strconv.ParseUint(parts[1], 0, 64)
	if err != nil || n == 0 {
		return taint.Secret{}, fmt.Errorf("bad -secret length %q", parts[1])
	}
	name := "secret"
	if len(parts) == 3 {
		name = parts[2]
	}
	return taint.Secret{Name: name, Base: base, Len: n}, nil
}

// runScanQuick is the CI suite: every assertion is an end-to-end property
// of the scanner (ISSUE acceptance criteria — the AES kernel scans clean
// on a baseline machine and reports silent-store leaks of key-derived
// bytes with silent stores enabled; the eBPF scenario reports prefetcher
// leaks of the protected region; the propagation self-test has teeth).
func runScanQuick() int {
	failed := 0
	assert := func(name string, ok bool, detail string) {
		status := "ok  "
		if !ok {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%s %-28s %s\n", status, name, detail)
	}

	base, err := core.ScanAES(false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pandora: scan: aes baseline: %v\n", err)
		return 1
	}
	assert("aes-baseline-clean", base.Total == 0,
		fmt.Sprintf("%d events", base.Total))

	ss, err := core.ScanAES(true)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pandora: scan: aes silent-stores: %v\n", err)
		return 1
	}
	assert("aes-silentstore-leak", ss.HasLeak("silent-store", "key"),
		fmt.Sprintf("%d silent-store events", ss.Count("silent-store")))

	ebpf, err := core.ScanEBPF()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pandora: scan: ebpf: %v\n", err)
		return 1
	}
	assert("ebpf-prefetcher-leak", ebpf.HasLeak("prefetcher", "kernel"),
		fmt.Sprintf("%d prefetcher events", ebpf.Count("prefetcher")))

	stlfBase, err := core.ScanStLF(false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pandora: scan: stlf baseline: %v\n", err)
		return 1
	}
	assert("stlf-baseline-clean", stlfBase.Total == 0,
		fmt.Sprintf("%d events", stlfBase.Total))

	stlf, err := core.ScanStLF(true)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pandora: scan: stlf: %v\n", err)
		return 1
	}
	assert("stlf-forward-leak", stlf.HasLeak("spec-forward", "secret"),
		fmt.Sprintf("%d spec-forward events", stlf.Count("spec-forward")))

	svBase, err := core.ScanSpecVect(false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pandora: scan: specvect baseline: %v\n", err)
		return 1
	}
	assert("specvect-baseline-clean", svBase.Total == 0,
		fmt.Sprintf("%d events", svBase.Total))

	sv, err := core.ScanSpecVect(true)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pandora: scan: specvect: %v\n", err)
		return 1
	}
	assert("specvect-wrongpath-leak", sv.HasLeak("wrong-path-load", "secret"),
		fmt.Sprintf("%d wrong-path-load events", sv.Count("wrong-path-load")))

	assert("selftest-clean", taint.SelfTestPlan(nil) == nil, "intact rules verify")
	assert("selftest-inject",
		taint.SelfTestPlan(&faults.Plan{Site: faults.SiteTaintALU}) == nil,
		"broken ALU rule caught")

	if failed > 0 {
		fmt.Printf("[%d SCAN ASSERTION(S) FAILED]\n", failed)
		return 1
	}
	fmt.Println("[SCAN OK]")
	return 0
}
