package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"pandora/cmd/pandora/internal/cli"
	"pandora/internal/core"
	"pandora/internal/faults"
	"pandora/internal/serve"
	"pandora/internal/taint"
)

// runScan implements `pandora scan`: the shadow-label leakage scanner.
// It runs a program with per-byte secret labels propagated alongside
// architectural state and reports every optimization whose trigger
// condition depended on a secret. Like a linter, it exits non-zero when
// leaks are found; `-quick` instead runs the CI assertion suite.
//
// The scenario and source paths execute through the same serve.JobRunner
// the `pandora serve` service uses, so the CLI and the job API cannot
// drift: one spec, one canonical form, one result.
func runScan(args []string) int {
	c := cli.New("scan",
		cli.WithJSON("emit the report as JSON"),
		cli.WithQuick("CI assertions: AES/StLF/spec-vect baselines clean, optimization runs dirty, propagation self-test"),
	)
	fs := c.Flags()
	inject := fs.Bool("inject", false, "break the ALU propagation rule; the self-test must catch it")
	scenario := fs.String("scenario", "", "built-in scenario: "+strings.Join(core.ScanScenarios(), " | "))
	machine := fs.String("machine", "", "machine features for source scans: "+core.MachineFeatures())
	secretFlag := fs.String("secret", "", "extra secret region base:len[:name] for source scans")
	if err := c.Parse(args); err != nil {
		return 2
	}
	defer c.Close()

	if *inject {
		// Inverted expectation: the propagation checker validates itself
		// by catching the SiteTaintALU fault plan — the same injector
		// `pandora fault` uses — breaking the ALU propagation rule.
		if err := taint.SelfTestPlan(&faults.Plan{Site: faults.SiteTaintALU}); err != nil {
			fmt.Fprintf(os.Stderr, "pandora: scan: %v\n", err)
			fmt.Println("[INJECTED TAINT BUG NOT CAUGHT]")
			return 1
		}
		fmt.Println("[INJECTED TAINT BUG CAUGHT]")
		return 0
	}
	if *c.Quick {
		return runScanQuick()
	}

	spec := serve.JobSpec{Kind: serve.KindScan}
	switch {
	case *scenario != "":
		spec.Scenario = *scenario
	case fs.NArg() == 1:
		src, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "pandora: %v\n", err)
			return 1
		}
		spec.Source = string(src)
		spec.Machine = *machine
		if *secretFlag != "" {
			if _, err := taint.ParseSecret(*secretFlag); err != nil {
				fmt.Fprintf(os.Stderr, "pandora: scan: %v\n", err)
				return 2
			}
			spec.Secrets = []string{*secretFlag}
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: pandora scan [-machine spec] [-secret base:len[:name]] [-json] <file.s>")
		fmt.Fprintf(os.Stderr, "       pandora scan -scenario %s [-json]\n", strings.Join(core.ScanScenarios(), "|"))
		fmt.Fprintln(os.Stderr, "       pandora scan -quick | -inject")
		return 2
	}

	canon, err := serve.Canonical(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pandora: scan: %v\n", err)
		return 2
	}
	runner, _ := serve.Runner(serve.KindScan)
	res, err := runner.Run(context.Background(), canon, serve.RunOpts{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pandora: scan: %v\n", err)
		return 1
	}

	if *c.JSON {
		var buf bytes.Buffer
		if err := json.Indent(&buf, res.Output, "", "  "); err != nil {
			fmt.Fprintf(os.Stderr, "pandora: scan: %v\n", err)
			return 1
		}
		buf.WriteByte('\n')
		os.Stdout.Write(buf.Bytes())
	} else {
		fmt.Print(res.Text)
	}
	if !res.Pass {
		return 1
	}
	return 0
}

// runScanQuick is the CI suite: every assertion is an end-to-end property
// of the scanner (ISSUE acceptance criteria — the AES kernel scans clean
// on a baseline machine and reports silent-store leaks of key-derived
// bytes with silent stores enabled; the eBPF scenario reports prefetcher
// leaks of the protected region; the propagation self-test has teeth).
func runScanQuick() int {
	q := cli.NewQuickSuite("SCAN")

	base, err := core.ScanAES(context.Background(), false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pandora: scan: aes baseline: %v\n", err)
		return 1
	}
	q.Assertf("aes-baseline-clean", base.Total == 0, "%d events", base.Total)

	ss, err := core.ScanAES(context.Background(), true)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pandora: scan: aes silent-stores: %v\n", err)
		return 1
	}
	q.Assertf("aes-silentstore-leak", ss.HasLeak("silent-store", "key"),
		"%d silent-store events", ss.Count("silent-store"))

	ebpf, err := core.ScanEBPF(context.Background())
	if err != nil {
		fmt.Fprintf(os.Stderr, "pandora: scan: ebpf: %v\n", err)
		return 1
	}
	q.Assertf("ebpf-prefetcher-leak", ebpf.HasLeak("prefetcher", "kernel"),
		"%d prefetcher events", ebpf.Count("prefetcher"))

	stlfBase, err := core.ScanStLF(context.Background(), false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pandora: scan: stlf baseline: %v\n", err)
		return 1
	}
	q.Assertf("stlf-baseline-clean", stlfBase.Total == 0, "%d events", stlfBase.Total)

	stlf, err := core.ScanStLF(context.Background(), true)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pandora: scan: stlf: %v\n", err)
		return 1
	}
	q.Assertf("stlf-forward-leak", stlf.HasLeak("spec-forward", "secret"),
		"%d spec-forward events", stlf.Count("spec-forward"))

	svBase, err := core.ScanSpecVect(context.Background(), false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pandora: scan: specvect baseline: %v\n", err)
		return 1
	}
	q.Assertf("specvect-baseline-clean", svBase.Total == 0, "%d events", svBase.Total)

	sv, err := core.ScanSpecVect(context.Background(), true)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pandora: scan: specvect: %v\n", err)
		return 1
	}
	q.Assertf("specvect-wrongpath-leak", sv.HasLeak("wrong-path-load", "secret"),
		"%d wrong-path-load events", sv.Count("wrong-path-load"))

	q.Assert("selftest-clean", taint.SelfTestPlan(nil) == nil, "intact rules verify")
	q.Assert("selftest-inject",
		taint.SelfTestPlan(&faults.Plan{Site: faults.SiteTaintALU}) == nil,
		"broken ALU rule caught")

	return q.Done()
}
