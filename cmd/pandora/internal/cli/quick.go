package cli

import "fmt"

// QuickSuite is the shared shape of the -quick CI suites (scan, trace,
// serve): named end-to-end assertions printed one per line, a final
// [NAME OK] / [N NAME ASSERTION(S) FAILED] verdict, and a process exit
// code. Extracted so every suite formats and counts identically.
type QuickSuite struct {
	name   string
	failed int
}

// NewQuickSuite starts a suite whose verdict lines use the given
// (upper-case) name.
func NewQuickSuite(name string) *QuickSuite {
	return &QuickSuite{name: name}
}

// Assert records one assertion and prints its line.
func (q *QuickSuite) Assert(name string, ok bool, detail string) {
	status := "ok  "
	if !ok {
		status = "FAIL"
		q.failed++
	}
	fmt.Printf("%s %-28s %s\n", status, name, detail)
}

// Assertf is Assert with a formatted detail.
func (q *QuickSuite) Assertf(name string, ok bool, format string, args ...any) {
	q.Assert(name, ok, fmt.Sprintf(format, args...))
}

// Done prints the verdict and returns the exit code (0 clean, 1 any
// failure).
func (q *QuickSuite) Done() int {
	if q.failed > 0 {
		fmt.Printf("[%d %s ASSERTION(S) FAILED]\n", q.failed, q.name)
		return 1
	}
	fmt.Printf("[%s OK]\n", q.name)
	return 0
}
