// Package cli is the shared runner for pandora subcommands. Every
// subcommand (bench, check, scan, fault, trace) declares which of the
// common flags it takes — -seed, -parallel, -json, -quick, -v — through
// options, so the flag names, defaults and help strings stay identical
// across the tool. The profiling flags -cpuprofile, -memprofile and
// -runtime-metrics are registered on every command unconditionally.
package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/metrics"
	"runtime/pprof"
)

// Command is one subcommand's flag set plus the shared lifecycle:
// Parse starts profiling, Close flushes it. Pointers for flags a
// command did not opt into are nil.
type Command struct {
	name string
	fs   *flag.FlagSet

	Seed     *int64
	Parallel *int
	JSON     *bool
	Quick    *bool
	Verbose  *bool

	cpuProfile     *string
	memProfile     *string
	runtimeMetrics *bool
	cpuFile        *os.File
}

// Option opts a Command into one of the shared flags.
type Option func(*Command)

// WithSeed registers -seed with the given default.
func WithSeed(def int64, usage string) Option {
	return func(c *Command) { c.Seed = c.fs.Int64("seed", def, usage) }
}

// WithParallel registers -parallel (0 = GOMAXPROCS).
func WithParallel() Option {
	return func(c *Command) {
		c.Parallel = c.fs.Int("parallel", 0, "worker count (0 = GOMAXPROCS)")
	}
}

// WithJSON registers -json.
func WithJSON(usage string) Option {
	return func(c *Command) { c.JSON = c.fs.Bool("json", false, usage) }
}

// WithQuick registers -quick.
func WithQuick(usage string) Option {
	return func(c *Command) { c.Quick = c.fs.Bool("quick", false, usage) }
}

// WithVerbose registers -v.
func WithVerbose() Option {
	return func(c *Command) { c.Verbose = c.fs.Bool("v", false, "narrative progress tracing") }
}

// New builds a Command named after the subcommand. The profiling flags
// are always present.
func New(name string, opts ...Option) *Command {
	c := &Command{name: name, fs: flag.NewFlagSet("pandora "+name, flag.ExitOnError)}
	c.cpuProfile = c.fs.String("cpuprofile", "", "write a CPU profile to this file")
	c.memProfile = c.fs.String("memprofile", "", "write a heap profile to this file on exit")
	c.runtimeMetrics = c.fs.Bool("runtime-metrics", false, "print Go runtime metrics to stderr on exit")
	for _, o := range opts {
		o(c)
	}
	return c
}

// Flags exposes the underlying set for command-specific flags.
func (c *Command) Flags() *flag.FlagSet { return c.fs }

// Parse parses args and starts the CPU profile if requested.
func (c *Command) Parse(args []string) error {
	if err := c.fs.Parse(args); err != nil {
		return err
	}
	if *c.cpuProfile != "" {
		f, err := os.Create(*c.cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		c.cpuFile = f
	}
	return nil
}

// Close stops the CPU profile, writes the heap profile and prints
// runtime metrics, in that order. Safe to call exactly once, typically
// via defer right after Parse succeeds.
func (c *Command) Close() {
	if c.cpuFile != nil {
		pprof.StopCPUProfile()
		c.cpuFile.Close()
		c.cpuFile = nil
	}
	if *c.memProfile != "" {
		if f, err := os.Create(*c.memProfile); err == nil {
			runtime.GC()
			pprof.WriteHeapProfile(f)
			f.Close()
		} else {
			fmt.Fprintf(os.Stderr, "pandora: %s: memprofile: %v\n", c.name, err)
		}
	}
	if *c.runtimeMetrics {
		c.printRuntimeMetrics()
	}
}

// printRuntimeMetrics samples a stable subset of runtime/metrics.
func (c *Command) printRuntimeMetrics() {
	samples := []metrics.Sample{
		{Name: "/gc/cycles/total:gc-cycles"},
		{Name: "/memory/classes/heap/objects:bytes"},
		{Name: "/memory/classes/total:bytes"},
		{Name: "/sched/goroutines:goroutines"},
	}
	metrics.Read(samples)
	fmt.Fprintf(os.Stderr, "runtime metrics (%s):\n", c.name)
	for _, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			fmt.Fprintf(os.Stderr, "  %-40s %d\n", s.Name, s.Value.Uint64())
		case metrics.KindFloat64:
			fmt.Fprintf(os.Stderr, "  %-40s %g\n", s.Name, s.Value.Float64())
		}
	}
}

// Errorf prints "pandora: <name>: ..." to stderr and returns the exit
// code, so call sites can `return c.Errorf(1, ...)`.
func (c *Command) Errorf(code int, format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "pandora: %s: %v\n", c.name, fmt.Sprintf(format, args...))
	return code
}

// Log prints a progress line to stderr when -v was given (no-op when
// the command did not opt into WithVerbose or the flag is off).
func (c *Command) Log(format string, args ...any) {
	if c.Verbose != nil && *c.Verbose {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
}

// LogFunc returns Log as a trace callback, or nil when -v is off, for
// APIs that treat a nil trace function as disabled.
func (c *Command) LogFunc() func(format string, args ...any) {
	if c.Verbose == nil || !*c.Verbose {
		return nil
	}
	return c.Log
}
