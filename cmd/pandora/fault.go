package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"pandora/cmd/pandora/internal/cli"
	"pandora/internal/faults"
	"pandora/internal/faults/campaign"
)

// runFault implements `pandora fault`: the fault-injection campaign. It
// sweeps seeded fault plans over every site class, attributes each caught
// fault to a detector (watchdog, invariant, oracle, state-diff, timing),
// and reports per-site detection rates and latencies. With -journal the
// campaign checkpoints after every trial and -resume continues an
// interrupted run, producing the same report byte for byte.
func runFault(args []string) int {
	c := cli.New("fault",
		cli.WithSeed(1, "campaign master seed"),
		cli.WithParallel(),
		cli.WithJSON("emit the full report as JSON"),
		cli.WithQuick("bounded CI campaign (4 trials/site) with acceptance gates"),
		cli.WithVerbose(),
	)
	fs := c.Flags()
	trials := fs.Int("trials", 0, "trials per fault site (0 = default)")
	sitesFlag := fs.String("sites", "", "comma-separated fault sites (default: all campaign sites)")
	journalPath := fs.String("journal", "", "checkpoint journal file (enables resume)")
	resume := fs.Bool("resume", false, "resume a journaled campaign instead of restarting")
	dumpDir := fs.String("dump-dir", "", "write CoreDump JSON artifacts of supervised aborts here")
	if err := c.Parse(args); err != nil {
		return 2
	}
	defer c.Close()

	opts := campaign.Options{
		Seed:    *c.Seed,
		Trials:  *trials,
		Workers: *c.Parallel,
		Journal: *journalPath,
		Resume:  *resume,
		DumpDir: *dumpDir,
		Log:     c.LogFunc(),
	}
	if *c.Quick && opts.Trials == 0 {
		opts.Trials = 4
	}
	if *sitesFlag != "" {
		for _, name := range strings.Split(*sitesFlag, ",") {
			s, err := faults.ParseSite(strings.TrimSpace(name))
			if err != nil {
				return c.Errorf(2, "%v", err)
			}
			opts.Sites = append(opts.Sites, s)
		}
	}
	if *resume && *journalPath == "" {
		return c.Errorf(2, "-resume needs -journal")
	}

	rep, err := campaign.Run(context.Background(), opts)
	if err != nil {
		return c.Errorf(1, "%v", err)
	}

	if *c.JSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return c.Errorf(1, "%v", err)
		}
	} else {
		printFaultReport(rep)
	}

	if err := campaign.Verify(rep); err != nil {
		fmt.Fprintf(os.Stderr, "pandora: fault: %v\n", err)
		fmt.Println("[FAULT CAMPAIGN FAILED]")
		return 1
	}
	fmt.Println("[FAULT CAMPAIGN OK]")
	return 0
}

func printFaultReport(rep *campaign.Report) {
	fmt.Printf("fault campaign: seed=%d trials/site=%d control=%d\n\n",
		rep.Seed, rep.TrialsPerSite, rep.ControlTrials)
	fmt.Printf("%-12s %7s %6s %9s %6s %12s  %s\n",
		"site", "trials", "fired", "detected", "rate", "mean-latency", "detectors")
	for _, s := range rep.Sites {
		dets := make([]string, 0, len(s.Detectors))
		for name, n := range s.Detectors {
			dets = append(dets, fmt.Sprintf("%s:%d", name, n))
		}
		// Map iteration order is random; the summary line must not be.
		sortStrings(dets)
		rate := "-"
		if s.Fired > 0 {
			rate = fmt.Sprintf("%3.0f%%", 100*s.DetectionRate)
		}
		lat := "-"
		if s.Detected > 0 {
			lat = fmt.Sprintf("%.1f", s.MeanLatency)
		}
		fmt.Printf("%-12s %7d %6d %9d %6s %12s  %s\n",
			s.Site, s.Trials, s.Fired, s.Detected, rate, lat, strings.Join(dets, " "))
	}
	fmt.Println()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
