package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"pandora/cmd/pandora/internal/cli"
	"pandora/internal/serve"
)

// runFault implements `pandora fault`: the fault-injection campaign. It
// sweeps seeded fault plans over every site class, attributes each caught
// fault to a detector (watchdog, invariant, oracle, state-diff, timing),
// and reports per-site detection rates and latencies. With -journal the
// campaign checkpoints after every trial and -resume continues an
// interrupted run, producing the same report byte for byte.
//
// The campaign executes through the serve.JobRunner the `pandora serve`
// service uses; the journal/resume/dump-dir knobs travel as RunOpts
// because they change how a result is computed, never what it is.
func runFault(args []string) int {
	c := cli.New("fault",
		cli.WithSeed(1, "campaign master seed"),
		cli.WithParallel(),
		cli.WithJSON("emit the full report as JSON"),
		cli.WithQuick("bounded CI campaign (4 trials/site) with acceptance gates"),
		cli.WithVerbose(),
	)
	fs := c.Flags()
	trials := fs.Int("trials", 0, "trials per fault site (0 = default)")
	sitesFlag := fs.String("sites", "", "comma-separated fault sites (default: all campaign sites)")
	journalPath := fs.String("journal", "", "checkpoint journal file (enables resume)")
	resume := fs.Bool("resume", false, "resume a journaled campaign instead of restarting")
	dumpDir := fs.String("dump-dir", "", "write CoreDump JSON artifacts of supervised aborts here")
	if err := c.Parse(args); err != nil {
		return 2
	}
	defer c.Close()

	spec := serve.JobSpec{Kind: serve.KindFault, Seed: *c.Seed, Trials: *trials}
	if *c.Quick && spec.Trials == 0 {
		spec.Trials = 4
	}
	if *sitesFlag != "" {
		for _, name := range strings.Split(*sitesFlag, ",") {
			spec.Sites = append(spec.Sites, strings.TrimSpace(name))
		}
	}
	if *resume && *journalPath == "" {
		return c.Errorf(2, "-resume needs -journal")
	}

	canon, err := serve.Canonical(spec)
	if err != nil {
		return c.Errorf(2, "%v", err)
	}
	runner, _ := serve.Runner(serve.KindFault)
	res, err := runner.Run(context.Background(), canon, serve.RunOpts{
		Workers: *c.Parallel,
		Log:     c.LogFunc(),
		Journal: *journalPath,
		Resume:  *resume,
		DumpDir: *dumpDir,
	})
	if err != nil {
		return c.Errorf(1, "%v", err)
	}

	if *c.JSON {
		var buf bytes.Buffer
		if err := json.Indent(&buf, res.Output, "", "  "); err != nil {
			return c.Errorf(1, "%v", err)
		}
		buf.WriteByte('\n')
		os.Stdout.Write(buf.Bytes())
	} else {
		fmt.Print(res.Text)
	}

	if !res.Pass {
		fmt.Fprintf(os.Stderr, "pandora: fault: %s\n", res.Note)
		fmt.Println("[FAULT CAMPAIGN FAILED]")
		return 1
	}
	fmt.Println("[FAULT CAMPAIGN OK]")
	return 0
}
