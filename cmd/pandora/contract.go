package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"strings"

	"pandora/cmd/pandora/internal/cli"
	"pandora/internal/diffcheck"
	"pandora/internal/kernels"
	"pandora/internal/serve"
)

// runContract implements `pandora contract`: the leakage-contract
// enumeration over the crypto-kernel library — every selected kernel ×
// optimization toggle mask × cache variant scanned under the taint
// engine with the cache-address observer armed, each cell classified
// clean or leaking. The output is the machine-generated extension of
// the paper's Table I over real kernels; `-json` emits the committed
// golden form (see EXPERIMENTS.md).
//
// Like scan and trace, the command executes through the serve.JobRunner
// for KindContract, so the CLI and the job API share one canonical spec
// and one result encoding.
func runContract(args []string) int {
	c := cli.New("contract",
		cli.WithParallel(),
		cli.WithJSON("emit the report as JSON (the committed golden form)"),
		cli.WithQuick("CI gate: kernel library × rotating mask schedule, designed verdicts, worker-count byte-identity"),
	)
	fs := c.Flags()
	kernelsFlag := fs.String("kernels", "", "comma-separated kernel subset: "+strings.Join(kernels.Names(), " | ")+" (empty = all)")
	variantsFlag := fs.String("variants", "", "comma-separated cache-variant subset (empty = all)")
	masks := fs.Int("masks", 0, fmt.Sprintf("enumerate the first N toggle masks (0 = the full %d-mask space)", diffcheck.AllMasks))
	out := fs.String("o", "", "write the report to this file instead of stdout")
	if err := c.Parse(args); err != nil {
		return 2
	}
	defer c.Close()

	if *c.Quick {
		return runContractQuick(*c.Parallel)
	}

	split := func(s string) []string {
		if s == "" {
			return nil
		}
		parts := strings.Split(s, ",")
		for i := range parts {
			parts[i] = strings.TrimSpace(parts[i])
		}
		return parts
	}
	spec := serve.JobSpec{
		Kind:     serve.KindContract,
		Kernels:  split(*kernelsFlag),
		Variants: split(*variantsFlag),
		Masks:    *masks,
	}
	canon, err := serve.Canonical(spec)
	if err != nil {
		return c.Errorf(2, "contract: %v", err)
	}
	runner, _ := serve.Runner(serve.KindContract)
	res, err := runner.Run(context.Background(), canon, serve.RunOpts{Workers: *c.Parallel, Log: c.LogFunc()})
	if err != nil {
		return c.Errorf(1, "contract: %v", err)
	}

	body := []byte(res.Text)
	if *c.JSON {
		body = res.Output
	}
	if *out != "" {
		if err := os.WriteFile(*out, body, 0o644); err != nil {
			return c.Errorf(1, "contract: %v", err)
		}
	} else {
		os.Stdout.Write(body)
	}
	if !res.Pass {
		fmt.Fprintf(os.Stderr, "pandora: contract: %s\n", res.Note)
		return 1
	}
	return 0
}

// quickMasks is the -quick rotating mask schedule: the baseline, every
// single optimization alone, and everything at once — the cells whose
// verdicts are pinned by design, cheap enough to run under -race in CI.
func quickMasks() []diffcheck.ToggleMask {
	out := []diffcheck.ToggleMask{0}
	for bit := diffcheck.ToggleMask(1); bit < diffcheck.AllMasks; bit <<= 1 {
		out = append(out, bit)
	}
	return append(out, diffcheck.AllMasks-1)
}

// runContractQuick is the CI gate (ISSUE acceptance criteria): on the
// full kernel library over the rotating schedule × two cache variants,
// the constant-time kernels verdict clean at mask 0, the table-lookup
// AES verdicts leaking through cache addresses at mask 0, the known
// optimization-induced leaks appear (silent stores break the cswap,
// computation simplification breaks even bitslice AES), and the report
// is byte-identical at 1 worker and 8.
func runContractQuick(workers int) int {
	q := cli.NewQuickSuite("CONTRACT")
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "pandora: contract: "+format+"\n", args...)
		return 1
	}

	opt := kernels.Options{
		Masks:    quickMasks(),
		Variants: []string{"default-lru", "tiny-plru-pow2"},
		Workers:  workers,
	}
	rep, err := kernels.Enumerate(context.Background(), opt)
	if err != nil {
		return fail("%v", err)
	}
	byName := make(map[string]kernels.KernelReport, len(rep.Kernels))
	for _, k := range rep.Kernels {
		byName[k.Kernel] = k
	}
	classes := func(k kernels.KernelReport) map[string]bool {
		m := make(map[string]bool, len(k.Classes))
		for _, c := range k.Classes {
			m[c.Class] = true
		}
		return m
	}

	for _, name := range []string{"chacha20-qr", "poly1305-acc", "bsaes-sbox", "montladder-cswap"} {
		q.Assertf(name+"-baseline-clean", byName[name].BaselineVerdict == "clean",
			"baseline verdict %q", byName[name].BaselineVerdict)
	}
	tt := byName["aes-ttable"]
	q.Assertf("aes-ttable-baseline-leaks",
		tt.BaselineVerdict == "leaks" && classes(tt)["cache-addr"],
		"baseline verdict %q, classes %v", tt.BaselineVerdict, tt.Classes)
	q.Assertf("montladder-silentstore-leak", classes(byName["montladder-cswap"])["silent-store"],
		"classes %v", byName["montladder-cswap"].Classes)
	q.Assertf("chacha-compsimp-leak", classes(byName["chacha20-qr"])["comp-simplification"],
		"classes %v", byName["chacha20-qr"].Classes)
	q.Assertf("bsaes-compsimp-leak", classes(byName["bsaes-sbox"])["comp-simplification"],
		"classes %v", byName["bsaes-sbox"].Classes)

	// Worker-count byte-identity: the property the serve cache and the
	// committed golden depend on.
	b, err := rep.Marshal()
	if err != nil {
		return fail("%v", err)
	}
	for _, w := range []int{1, 8} {
		opt.Workers = w
		again, err := kernels.Enumerate(context.Background(), opt)
		if err != nil {
			return fail("workers=%d: %v", w, err)
		}
		ab, err := again.Marshal()
		if err != nil {
			return fail("workers=%d: %v", w, err)
		}
		q.Assertf(fmt.Sprintf("byte-identical-at-%d-workers", w), bytes.Equal(b, ab),
			"%d bytes", len(ab))
	}

	// Canonicalization: naming every kernel explicitly, in any order, is
	// the same job as naming none.
	kAll, _, err := serve.Key(serve.JobSpec{Kind: serve.KindContract})
	if err != nil {
		return fail("key: %v", err)
	}
	names := kernels.Names()
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	kExplicit, _, err := serve.Key(serve.JobSpec{Kind: serve.KindContract, Kernels: names})
	if err != nil {
		return fail("key: %v", err)
	}
	q.Assertf("job-key-canonical", kAll == kExplicit, "%.12s… == %.12s…", kAll, kExplicit)

	return q.Done()
}
