package main

import (
	"fmt"
	"os"

	"pandora/cmd/pandora/internal/cli"
	"pandora/internal/serve"
)

// serveFlags are the `pandora bench -serve` knobs, registered alongside
// the parallel- and cycles-bench flags on the shared bench command.
type serveFlags struct {
	enabled *bool
	jobs    *int
}

func registerServeFlags(c *cli.Command) serveFlags {
	fs := c.Flags()
	return serveFlags{
		enabled: fs.Bool("serve", false, "benchmark the job service (cold vs warm jobs/sec, latency percentiles)"),
		jobs:    fs.Int("jobs", 0, "with -serve: workload job count (0 = default)"),
	}
}

// runBenchServe implements `pandora bench -serve`: measure the service
// end to end — cold pass (every job executes) vs warm pass (every job
// is a cache hit) — and write BENCH_serve.json. Like BENCH_cycles.json
// the numbers are wall-clock derived, so a committed baseline from a
// different CPU configuration is not overwritten without -force.
func runBenchServe(c *cli.Command, f serveFlags, force bool, jsonPath string, workers int) int {
	progress := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	rep, err := serve.Bench(serve.BenchOptions{
		Jobs:     *f.jobs,
		Workers:  workers,
		Progress: progress,
	})
	if err != nil {
		return c.Errorf(1, "%v", err)
	}

	if prev, err := serve.ReadBenchFile(jsonPath); err == nil {
		if !rep.SameCPU(prev) && !force {
			return c.Errorf(1,
				"%s was measured at num_cpu=%d gomaxprocs=%d but this run is %d/%d; "+
					"refusing to overwrite an apples-to-oranges baseline (use -force to override)",
				jsonPath, prev.NumCPU, prev.GOMAXPROCS, rep.NumCPU, rep.GOMAXPROCS)
		}
	}
	if err := rep.WriteFile(jsonPath); err != nil {
		return c.Errorf(1, "%v", err)
	}
	fmt.Printf("cold: %.2f jobs/sec (p50 %.2fms, p99 %.2fms)\n",
		rep.Cold.JobsPerSec, rep.Cold.P50Millis, rep.Cold.P99Millis)
	fmt.Printf("warm: %.2f jobs/sec (p50 %.2fms, p99 %.2fms) — %.2fx\n",
		rep.Warm.JobsPerSec, rep.Warm.P50Millis, rep.Warm.P99Millis, rep.WarmSpeedup)
	fmt.Printf("wrote %s\n", jsonPath)
	return 0
}
